"""SBML semantic validation.

The paper's baseline (semanticSBML) "checks the semantic validity of
the models to be composed, to ensure only valid models are merged";
SBMLCompose relies on the same rules when detecting conflicting
components.  This module implements the checks both engines need:
reference integrity, id uniqueness, math binding, function-definition
sanity and unit-reference resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.errors import SBMLValidationError
from repro.mathml.ast import Apply, Identifier, KNOWN_OPERATORS, Lambda, MathNode
from repro.sbml.components import AssignmentRule, RateRule
from repro.sbml.model import Model
from repro.units.kinds import is_known_kind

__all__ = ["ValidationIssue", "validate_model", "assert_valid", "ERROR", "WARNING"]

ERROR = "error"
WARNING = "warning"

#: Symbols implicitly bound in every SBML math context.
_IMPLICIT_SYMBOLS = {"time", "delay", "avogadro"}


@dataclass(frozen=True)
class ValidationIssue:
    """One validation finding."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}:{self.code}] {self.message}"


def validate_model(model: Model) -> List[ValidationIssue]:
    """Run every check; returns all findings (empty list == valid)."""
    issues: List[ValidationIssue] = []
    issues.extend(_check_global_id_uniqueness(model))
    issues.extend(_check_compartments(model))
    issues.extend(_check_species(model))
    issues.extend(_check_parameters_and_units(model))
    issues.extend(_check_function_definitions(model))
    issues.extend(_check_rules(model))
    issues.extend(_check_initial_assignments(model))
    issues.extend(_check_reactions(model))
    issues.extend(_check_events(model))
    return issues


def assert_valid(model: Model) -> None:
    """Raise :class:`SBMLValidationError` if any *error* is found."""
    errors = [
        issue for issue in validate_model(model) if issue.severity == ERROR
    ]
    if errors:
        raise SBMLValidationError(errors)


def _issue(code: str, message: str, severity: str = ERROR) -> ValidationIssue:
    return ValidationIssue(severity, code, message)


def _check_global_id_uniqueness(model: Model) -> List[ValidationIssue]:
    issues = []
    seen: Dict[str, str] = {}
    collections = [
        ("functionDefinition", model.function_definitions),
        ("compartmentType", model.compartment_types),
        ("speciesType", model.species_types),
        ("compartment", model.compartments),
        ("species", model.species),
        ("parameter", model.parameters),
        ("reaction", model.reactions),
        ("event", model.events),
    ]
    for kind, collection in collections:
        for component in collection:
            component_id = getattr(component, "id", None)
            if component_id is None:
                continue
            if component_id in seen:
                issues.append(
                    _issue(
                        "duplicate-id",
                        f"{kind} id {component_id!r} already used by a "
                        f"{seen[component_id]}",
                    )
                )
            else:
                seen[component_id] = kind
    # Unit definitions live in their own id namespace in our model but
    # must be unique among themselves.
    unit_ids: Set[str] = set()
    for ud in model.unit_definitions:
        if ud.id in unit_ids:
            issues.append(
                _issue("duplicate-id", f"duplicate unitDefinition id {ud.id!r}")
            )
        if ud.id is not None:
            unit_ids.add(ud.id)
    return issues


def _unit_ref_known(model: Model, ref: str) -> bool:
    if is_known_kind(ref):
        return True
    if any(ud.id == ref for ud in model.unit_definitions):
        return True
    return ref in ("substance", "volume", "area", "length", "time")


def _check_compartments(model: Model) -> List[ValidationIssue]:
    issues = []
    compartment_ids = {c.id for c in model.compartments}
    type_ids = {ct.id for ct in model.compartment_types}
    for compartment in model.compartments:
        where = f"compartment {compartment.id!r}"
        if compartment.compartment_type is not None and (
            compartment.compartment_type not in type_ids
        ):
            issues.append(
                _issue(
                    "unknown-compartment-type",
                    f"{where} references unknown compartmentType "
                    f"{compartment.compartment_type!r}",
                )
            )
        if compartment.outside is not None and (
            compartment.outside not in compartment_ids
        ):
            issues.append(
                _issue(
                    "unknown-outside",
                    f"{where} is outside unknown compartment "
                    f"{compartment.outside!r}",
                )
            )
        if compartment.size is not None and compartment.size < 0:
            issues.append(
                _issue("negative-size", f"{where} has negative size")
            )
        if compartment.units is not None and not _unit_ref_known(
            model, compartment.units
        ):
            issues.append(
                _issue(
                    "unknown-units",
                    f"{where} references unknown units {compartment.units!r}",
                )
            )
    return issues


def _check_species(model: Model) -> List[ValidationIssue]:
    issues = []
    compartment_ids = {c.id for c in model.compartments}
    type_ids = {st.id for st in model.species_types}
    for species in model.species:
        where = f"species {species.id!r}"
        if species.compartment is None:
            issues.append(
                _issue("missing-compartment", f"{where} has no compartment")
            )
        elif species.compartment not in compartment_ids:
            issues.append(
                _issue(
                    "unknown-compartment",
                    f"{where} lives in unknown compartment "
                    f"{species.compartment!r}",
                )
            )
        if species.species_type is not None and species.species_type not in type_ids:
            issues.append(
                _issue(
                    "unknown-species-type",
                    f"{where} references unknown speciesType "
                    f"{species.species_type!r}",
                )
            )
        if (
            species.initial_amount is not None
            and species.initial_concentration is not None
        ):
            issues.append(
                _issue(
                    "double-initial",
                    f"{where} sets both initialAmount and "
                    "initialConcentration",
                )
            )
        value = species.initial_value()
        if value is not None and value < 0:
            issues.append(
                _issue("negative-initial", f"{where} has negative initial value")
            )
        if species.substance_units is not None and not _unit_ref_known(
            model, species.substance_units
        ):
            issues.append(
                _issue(
                    "unknown-units",
                    f"{where} references unknown substanceUnits "
                    f"{species.substance_units!r}",
                )
            )
    return issues


def _check_parameters_and_units(model: Model) -> List[ValidationIssue]:
    issues = []
    for parameter in model.parameters:
        if parameter.units is not None and not _unit_ref_known(
            model, parameter.units
        ):
            issues.append(
                _issue(
                    "unknown-units",
                    f"parameter {parameter.id!r} references unknown units "
                    f"{parameter.units!r}",
                )
            )
    return issues


def _check_function_definitions(model: Model) -> List[ValidationIssue]:
    issues = []
    function_ids = {fd.id for fd in model.function_definitions if fd.id}
    for fd in model.function_definitions:
        where = f"functionDefinition {fd.id!r}"
        if fd.math is None:
            issues.append(_issue("missing-math", f"{where} has no math"))
            continue
        free = fd.math.free_identifiers() - _IMPLICIT_SYMBOLS
        if free:
            issues.append(
                _issue(
                    "unbound-in-function",
                    f"{where} body uses non-parameter identifier(s) "
                    f"{sorted(free)}",
                )
            )
        called = _called_functions(fd.math.body)
        if fd.id in called:
            issues.append(
                _issue("recursive-function", f"{where} calls itself")
            )
    # Cross-definition cycles (a calls b, b calls a).
    issues.extend(_check_function_cycles(model, function_ids))
    return issues


def _called_functions(math: MathNode) -> Set[str]:
    calls = set()
    for node in math.walk():
        if isinstance(node, Apply) and node.op not in KNOWN_OPERATORS:
            calls.add(node.op)
    return calls


def _check_function_cycles(model: Model, function_ids: Set[str]) -> List[ValidationIssue]:
    graph: Dict[str, Set[str]] = {}
    for fd in model.function_definitions:
        if fd.id and fd.math is not None:
            graph[fd.id] = _called_functions(fd.math.body) & function_ids

    issues = []
    visiting: Set[str] = set()
    visited: Set[str] = set()

    def visit(name: str) -> bool:
        if name in visiting:
            return True
        if name in visited:
            return False
        visiting.add(name)
        cyclic = any(visit(callee) for callee in graph.get(name, ()))
        visiting.discard(name)
        visited.add(name)
        return cyclic

    for name in graph:
        if name not in visited and visit(name):
            issues.append(
                _issue(
                    "recursive-function",
                    f"functionDefinition {name!r} is part of a call cycle",
                )
            )
    return issues


def _variable_targets(model: Model) -> Dict[str, object]:
    """Symbols a rule/assignment may determine."""
    table: Dict[str, object] = {}
    for species in model.species:
        if species.id:
            table[species.id] = species
    for parameter in model.parameters:
        if parameter.id:
            table[parameter.id] = parameter
    for compartment in model.compartments:
        if compartment.id:
            table[compartment.id] = compartment
    return table


def _check_rules(model: Model) -> List[ValidationIssue]:
    issues = []
    targets = _variable_targets(model)
    determined: Set[str] = set()
    for rule in model.rules:
        if rule.math is None:
            issues.append(
                _issue("missing-math", f"{type(rule).__name__} has no math")
            )
        if isinstance(rule, (AssignmentRule, RateRule)):
            variable = rule.variable
            if variable is None or variable not in targets:
                issues.append(
                    _issue(
                        "unknown-variable",
                        f"{type(rule).__name__} determines unknown "
                        f"variable {variable!r}",
                    )
                )
                continue
            if variable in determined:
                issues.append(
                    _issue(
                        "double-determined",
                        f"variable {variable!r} is determined by more "
                        "than one rule",
                    )
                )
            determined.add(variable)
        if rule.math is not None:
            issues.extend(
                _check_math_bindings(
                    model, rule.math, f"{type(rule).__name__}"
                )
            )
    return issues


def _check_initial_assignments(model: Model) -> List[ValidationIssue]:
    issues = []
    targets = _variable_targets(model)
    seen: Set[str] = set()
    for ia in model.initial_assignments:
        if ia.symbol not in targets:
            issues.append(
                _issue(
                    "unknown-symbol",
                    f"initialAssignment for unknown symbol {ia.symbol!r}",
                )
            )
        if ia.symbol in seen:
            issues.append(
                _issue(
                    "double-initial-assignment",
                    f"symbol {ia.symbol!r} has more than one "
                    "initialAssignment",
                )
            )
        if ia.symbol is not None:
            seen.add(ia.symbol)
        if ia.math is None:
            issues.append(
                _issue(
                    "missing-math",
                    f"initialAssignment for {ia.symbol!r} has no math",
                )
            )
        else:
            issues.extend(
                _check_math_bindings(
                    model, ia.math, f"initialAssignment for {ia.symbol!r}"
                )
            )
    return issues


def _check_math_bindings(
    model: Model,
    math: MathNode,
    context: str,
    extra_symbols: Set[str] = frozenset(),
) -> List[ValidationIssue]:
    issues = []
    known = set(model.global_ids()) | _IMPLICIT_SYMBOLS | set(extra_symbols)
    function_ids = {fd.id for fd in model.function_definitions if fd.id}
    bound_params: Set[str] = set()
    for node in math.walk():
        if isinstance(node, Lambda):
            bound_params.update(node.params)
    for node in math.walk():
        if isinstance(node, Identifier):
            if node.name not in known and node.name not in bound_params:
                issues.append(
                    _issue(
                        "unbound-identifier",
                        f"{context} references unknown identifier "
                        f"{node.name!r}",
                    )
                )
        elif isinstance(node, Apply) and node.op not in KNOWN_OPERATORS:
            if node.op not in function_ids:
                issues.append(
                    _issue(
                        "unknown-function",
                        f"{context} calls unknown function {node.op!r}",
                    )
                )
    return issues


def _check_reactions(model: Model) -> List[ValidationIssue]:
    issues = []
    species_ids = {s.id for s in model.species}
    for reaction in model.reactions:
        where = f"reaction {reaction.id!r}"
        if not reaction.reactants and not reaction.products:
            issues.append(
                _issue(
                    "empty-reaction",
                    f"{where} has neither reactants nor products",
                    WARNING,
                )
            )
        for reference in reaction.reactants + reaction.products:
            if reference.species not in species_ids:
                issues.append(
                    _issue(
                        "unknown-species",
                        f"{where} references unknown species "
                        f"{reference.species!r}",
                    )
                )
            if reference.stoichiometry <= 0:
                issues.append(
                    _issue(
                        "bad-stoichiometry",
                        f"{where} has non-positive stoichiometry for "
                        f"{reference.species!r}",
                    )
                )
        for modifier in reaction.modifiers:
            if modifier.species not in species_ids:
                issues.append(
                    _issue(
                        "unknown-species",
                        f"{where} modifier references unknown species "
                        f"{modifier.species!r}",
                    )
                )
        if reaction.kinetic_law is None:
            issues.append(
                _issue("missing-kinetic-law", f"{where} has no kinetic law", WARNING)
            )
        elif reaction.kinetic_law.math is None:
            issues.append(
                _issue(
                    "missing-math", f"{where} kinetic law has no math"
                )
            )
        else:
            local = {
                parameter.id
                for parameter in reaction.kinetic_law.parameters
                if parameter.id
            }
            issues.extend(
                _check_math_bindings(
                    model,
                    reaction.kinetic_law.math,
                    f"{where} kinetic law",
                    extra_symbols=local,
                )
            )
    return issues


def _check_events(model: Model) -> List[ValidationIssue]:
    issues = []
    targets = _variable_targets(model)
    for event in model.events:
        where = f"event {event.id!r}"
        if event.trigger is None or event.trigger.math is None:
            issues.append(
                _issue("missing-trigger", f"{where} has no trigger math")
            )
        else:
            issues.extend(
                _check_math_bindings(
                    model, event.trigger.math, f"{where} trigger"
                )
            )
        if event.delay is not None and event.delay.math is not None:
            issues.extend(
                _check_math_bindings(model, event.delay.math, f"{where} delay")
            )
        if not event.assignments:
            issues.append(
                _issue(
                    "empty-event",
                    f"{where} has no event assignments",
                    WARNING,
                )
            )
        for assignment in event.assignments:
            if assignment.variable not in targets:
                issues.append(
                    _issue(
                        "unknown-variable",
                        f"{where} assigns unknown variable "
                        f"{assignment.variable!r}",
                    )
                )
            if assignment.math is None:
                issues.append(
                    _issue(
                        "missing-math",
                        f"{where} assignment to {assignment.variable!r} "
                        "has no math",
                    )
                )
            else:
                issues.extend(
                    _check_math_bindings(
                        model,
                        assignment.math,
                        f"{where} assignment to {assignment.variable!r}",
                    )
                )
    return issues
