"""SBML XML writer.

Serialises the object model back to SBML Level 2 Version 4.  Output is
deterministic (attribute and component order is fixed) so that the
structural diff in :mod:`repro.eval.sbml_diff` and the paper-style
textual comparison (§4.1.1) are stable across runs.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.mathml.ast import MathNode
from repro.mathml.writer import math_to_element
from repro.sbml.components import (
    AlgebraicRule,
    AssignmentRule,
    Compartment,
    CompartmentType,
    Constraint,
    Event,
    FunctionDefinition,
    InitialAssignment,
    Parameter,
    RateRule,
    Reaction,
    SBase,
    Species,
    SpeciesReference,
    SpeciesType,
)
from repro.sbml.model import Document, Model
from repro.sbml.reader import SBML_L2V4_NS
from repro.units.definitions import UnitDefinition

__all__ = ["write_sbml", "write_sbml_file"]

_RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
_BQBIOL_NS = "http://biomodels.net/biology-qualifiers/"


def write_sbml(document_or_model, indent: Optional[str] = "  ") -> str:
    """Serialise a :class:`Document` (or bare :class:`Model`) to XML."""
    if isinstance(document_or_model, Model):
        document = Document(model=document_or_model)
    else:
        document = document_or_model
    root = ET.Element(
        "sbml",
        {
            "xmlns": SBML_L2V4_NS,
            "level": str(document.level),
            "version": str(document.version),
        },
    )
    root.append(_model_element(document.model))
    if indent is not None:
        ET.indent(root, space=indent)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_sbml_file(document_or_model, path, indent: Optional[str] = "  ") -> None:
    """Serialise to a file."""
    text = write_sbml(document_or_model, indent)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _set_sbase(element: ET.Element, component: SBase) -> None:
    if component.id is not None:
        element.set("id", component.id)
    if component.name is not None:
        element.set("name", component.name)
    if component.metaid is not None:
        element.set("metaid", component.metaid)
    if component.sbo_term is not None:
        element.set("sboTerm", component.sbo_term)
    if component.notes:
        notes = ET.SubElement(element, "notes")
        paragraph = ET.SubElement(
            notes, "{http://www.w3.org/1999/xhtml}p"
        )
        paragraph.text = component.notes
    if component.annotations:
        element.append(_annotation_element(component))


def _annotation_element(component: SBase) -> ET.Element:
    annotation = ET.Element("annotation")
    rdf = ET.SubElement(annotation, f"{{{_RDF_NS}}}RDF")
    description = ET.SubElement(rdf, f"{{{_RDF_NS}}}Description")
    about = component.metaid or component.id or ""
    description.set(f"{{{_RDF_NS}}}about", f"#{about}")
    for qualifier in sorted(component.annotations):
        uris = component.annotations[qualifier]
        qualifier_element = ET.SubElement(
            description, f"{{{_BQBIOL_NS}}}{qualifier}"
        )
        bag = ET.SubElement(qualifier_element, f"{{{_RDF_NS}}}Bag")
        for uri in uris:
            li = ET.SubElement(bag, f"{{{_RDF_NS}}}li")
            li.set(f"{{{_RDF_NS}}}resource", uri)
    return annotation


def _append_math(element: ET.Element, math: Optional[MathNode]) -> None:
    if math is not None:
        element.append(math_to_element(math))


def _list_element(parent: ET.Element, name: str, items) -> Optional[ET.Element]:
    if not items:
        return None
    return ET.SubElement(parent, name)


def _model_element(model: Model) -> ET.Element:
    element = ET.Element("model")
    _set_sbase(element, model)

    container = _list_element(
        element, "listOfFunctionDefinitions", model.function_definitions
    )
    if container is not None:
        for fd in model.function_definitions:
            container.append(_function_definition_element(fd))

    container = _list_element(
        element, "listOfUnitDefinitions", model.unit_definitions
    )
    if container is not None:
        for ud in model.unit_definitions:
            container.append(_unit_definition_element(ud))

    container = _list_element(
        element, "listOfCompartmentTypes", model.compartment_types
    )
    if container is not None:
        for ct in model.compartment_types:
            item = ET.SubElement(container, "compartmentType")
            _set_sbase(item, ct)

    container = _list_element(element, "listOfSpeciesTypes", model.species_types)
    if container is not None:
        for st in model.species_types:
            item = ET.SubElement(container, "speciesType")
            _set_sbase(item, st)

    container = _list_element(element, "listOfCompartments", model.compartments)
    if container is not None:
        for compartment in model.compartments:
            container.append(_compartment_element(compartment))

    container = _list_element(element, "listOfSpecies", model.species)
    if container is not None:
        for species in model.species:
            container.append(_species_element(species))

    container = _list_element(element, "listOfParameters", model.parameters)
    if container is not None:
        for parameter in model.parameters:
            container.append(_parameter_element(parameter))

    container = _list_element(
        element, "listOfInitialAssignments", model.initial_assignments
    )
    if container is not None:
        for ia in model.initial_assignments:
            item = ET.SubElement(container, "initialAssignment")
            _set_sbase(item, ia)
            item.set("symbol", ia.symbol or "")
            _append_math(item, ia.math)

    container = _list_element(element, "listOfRules", model.rules)
    if container is not None:
        for rule in model.rules:
            container.append(_rule_element(rule))

    container = _list_element(element, "listOfConstraints", model.constraints)
    if container is not None:
        for constraint in model.constraints:
            item = ET.SubElement(container, "constraint")
            _set_sbase(item, constraint)
            _append_math(item, constraint.math)
            if constraint.message:
                message = ET.SubElement(item, "message")
                paragraph = ET.SubElement(
                    message, "{http://www.w3.org/1999/xhtml}p"
                )
                paragraph.text = constraint.message

    container = _list_element(element, "listOfReactions", model.reactions)
    if container is not None:
        for reaction in model.reactions:
            container.append(_reaction_element(reaction))

    container = _list_element(element, "listOfEvents", model.events)
    if container is not None:
        for event in model.events:
            container.append(_event_element(event))

    return element


def _function_definition_element(fd: FunctionDefinition) -> ET.Element:
    element = ET.Element("functionDefinition")
    _set_sbase(element, fd)
    _append_math(element, fd.math)
    return element


def _unit_definition_element(ud: UnitDefinition) -> ET.Element:
    element = ET.Element("unitDefinition")
    if ud.id is not None:
        element.set("id", ud.id)
    if ud.name is not None:
        element.set("name", ud.name)
    if ud.units:
        container = ET.SubElement(element, "listOfUnits")
        for unit in ud.units:
            item = ET.SubElement(container, "unit", {"kind": unit.kind})
            if unit.exponent != 1:
                item.set("exponent", str(unit.exponent))
            if unit.scale != 0:
                item.set("scale", str(unit.scale))
            if unit.multiplier != 1.0:
                item.set("multiplier", repr(unit.multiplier))
    return element


def _compartment_element(compartment: Compartment) -> ET.Element:
    element = ET.Element("compartment")
    _set_sbase(element, compartment)
    if compartment.size is not None:
        element.set("size", repr(compartment.size))
    if compartment.units is not None:
        element.set("units", compartment.units)
    if compartment.spatial_dimensions != 3:
        element.set("spatialDimensions", str(compartment.spatial_dimensions))
    if compartment.compartment_type is not None:
        element.set("compartmentType", compartment.compartment_type)
    if compartment.outside is not None:
        element.set("outside", compartment.outside)
    if not compartment.constant:
        element.set("constant", "false")
    return element


def _species_element(species: Species) -> ET.Element:
    element = ET.Element("species")
    _set_sbase(element, species)
    if species.compartment is not None:
        element.set("compartment", species.compartment)
    if species.initial_amount is not None:
        element.set("initialAmount", repr(species.initial_amount))
    if species.initial_concentration is not None:
        element.set("initialConcentration", repr(species.initial_concentration))
    if species.substance_units is not None:
        element.set("substanceUnits", species.substance_units)
    if species.has_only_substance_units:
        element.set("hasOnlySubstanceUnits", "true")
    if species.boundary_condition:
        element.set("boundaryCondition", "true")
    if species.constant:
        element.set("constant", "true")
    if species.species_type is not None:
        element.set("speciesType", species.species_type)
    if species.charge is not None:
        element.set("charge", str(species.charge))
    return element


def _parameter_element(parameter: Parameter) -> ET.Element:
    element = ET.Element("parameter")
    _set_sbase(element, parameter)
    if parameter.value is not None:
        element.set("value", repr(parameter.value))
    if parameter.units is not None:
        element.set("units", parameter.units)
    if not parameter.constant:
        element.set("constant", "false")
    return element


def _rule_element(rule) -> ET.Element:
    if isinstance(rule, AssignmentRule):
        element = ET.Element("assignmentRule")
        element.set("variable", rule.variable or "")
    elif isinstance(rule, RateRule):
        element = ET.Element("rateRule")
        element.set("variable", rule.variable or "")
    elif isinstance(rule, AlgebraicRule):
        element = ET.Element("algebraicRule")
    else:
        raise TypeError(f"unknown rule type {type(rule).__name__}")
    _set_sbase(element, rule)
    _append_math(element, rule.math)
    return element


def _species_reference_element(name: str, reference: SpeciesReference) -> ET.Element:
    element = ET.Element(name, {"species": reference.species})
    if reference.stoichiometry != 1.0:
        element.set("stoichiometry", repr(reference.stoichiometry))
    return element


def _reaction_element(reaction: Reaction) -> ET.Element:
    element = ET.Element("reaction")
    _set_sbase(element, reaction)
    if not reaction.reversible:
        element.set("reversible", "false")
    if reaction.fast:
        element.set("fast", "true")
    if reaction.reactants:
        container = ET.SubElement(element, "listOfReactants")
        for reference in reaction.reactants:
            container.append(
                _species_reference_element("speciesReference", reference)
            )
    if reaction.products:
        container = ET.SubElement(element, "listOfProducts")
        for reference in reaction.products:
            container.append(
                _species_reference_element("speciesReference", reference)
            )
    if reaction.modifiers:
        container = ET.SubElement(element, "listOfModifiers")
        for modifier in reaction.modifiers:
            ET.SubElement(
                container,
                "modifierSpeciesReference",
                {"species": modifier.species},
            )
    if reaction.kinetic_law is not None:
        law = ET.SubElement(element, "kineticLaw")
        _set_sbase(law, reaction.kinetic_law)
        _append_math(law, reaction.kinetic_law.math)
        if reaction.kinetic_law.parameters:
            container = ET.SubElement(law, "listOfParameters")
            for parameter in reaction.kinetic_law.parameters:
                container.append(_parameter_element(parameter))
    return element


def _event_element(event: Event) -> ET.Element:
    element = ET.Element("event")
    _set_sbase(element, event)
    if event.trigger is not None:
        trigger = ET.SubElement(element, "trigger")
        _append_math(trigger, event.trigger.math)
    if event.delay is not None:
        delay = ET.SubElement(element, "delay")
        _append_math(delay, event.delay.math)
    if event.assignments:
        container = ET.SubElement(element, "listOfEventAssignments")
        for assignment in event.assignments:
            item = ET.SubElement(
                container, "eventAssignment", {"variable": assignment.variable}
            )
            _append_math(item, assignment.math)
    return element
