"""Simulation substrate: deterministic ODE and stochastic SSA.

Models are simulated "to determine how a biochemical network will
behave over a given time interval" (paper §1); the evaluation methods
of §4.1.2-4.1.4 all consume the traces produced here.
"""

from repro.sim.gillespie import GillespieSimulator, simulate_stochastic
from repro.sim.integrators import rk4, rkf45
from repro.sim.odes import OdeSimulator, simulate
from repro.sim.trace import Trace

__all__ = [
    "Trace",
    "OdeSimulator",
    "simulate",
    "GillespieSimulator",
    "simulate_stochastic",
    "rk4",
    "rkf45",
]
