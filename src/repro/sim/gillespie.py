"""Stochastic simulation: Gillespie's direct method (SSA).

The paper's §4.1.4 evaluation uses the Monte Carlo Model Checker MC2,
which judges PLTL properties over sets of stochastic simulation runs;
this module provides those runs.  Propensities are evaluated from the
model's kinetic laws with the current molecule counts, so mass-action
models behave exactly as in Wilkinson's formulation the paper cites
for its Figure 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MathError, SimulationError
from repro.mathml.evaluator import Evaluator
from repro.sbml.model import Model
from repro.sim.trace import Trace

__all__ = ["GillespieSimulator", "simulate_stochastic"]


class GillespieSimulator:
    """Stochastic simulator bound to one model.

    Species values are interpreted as *molecule counts*; models using
    initial concentrations are converted by rounding
    ``concentration × volume_scale`` (``volume_scale`` defaults to 1,
    letting dimensionless toy models run unchanged — callers merging
    real concentration models should rescale, per Figure 6).
    """

    def __init__(self, model: Model, volume_scale: float = 1.0):
        self.model = model
        self.volume_scale = volume_scale
        self.evaluator = Evaluator(model.function_table())
        self._build()

    def _build(self) -> None:
        model = self.model
        self.species_ids = [s.id for s in model.species if s.id]
        self._dynamic = {
            s.id
            for s in model.species
            if s.id and not s.constant and not s.boundary_condition
        }
        self._reactions: List[Tuple[object, Dict[str, float], Dict[str, float]]] = []
        for reaction in model.reactions:
            law = reaction.kinetic_law
            if law is None or law.math is None:
                continue
            locals_env = {
                parameter.id: parameter.value
                for parameter in law.parameters
                if parameter.id is not None and parameter.value is not None
            }
            deltas: Dict[str, float] = {}
            for reference in reaction.reactants:
                deltas[reference.species] = (
                    deltas.get(reference.species, 0.0) - reference.stoichiometry
                )
            for reference in reaction.products:
                deltas[reference.species] = (
                    deltas.get(reference.species, 0.0) + reference.stoichiometry
                )
            self._reactions.append((law.math, locals_env, deltas))
        if not self._reactions:
            raise SimulationError(
                "model has no kinetic laws; nothing to simulate"
            )

    def initial_counts(self) -> Dict[str, float]:
        """Molecule counts at t = 0."""
        counts: Dict[str, float] = {}
        for species in self.model.species:
            if species.id is None:
                continue
            if species.initial_amount is not None:
                counts[species.id] = float(round(species.initial_amount))
            elif species.initial_concentration is not None:
                counts[species.id] = float(
                    round(species.initial_concentration * self.volume_scale)
                )
            else:
                counts[species.id] = 0.0
        return counts

    def _base_env(self) -> Dict[str, float]:
        env: Dict[str, float] = {"time": 0.0}
        for compartment in self.model.compartments:
            if compartment.id is not None:
                env[compartment.id] = (
                    compartment.size if compartment.size is not None else 1.0
                )
        for parameter in self.model.parameters:
            if parameter.id is not None:
                env[parameter.id] = (
                    parameter.value if parameter.value is not None else 0.0
                )
        return env

    def run(
        self,
        t_end: float,
        rng: Optional[np.random.Generator] = None,
        grid_points: int = 101,
        max_events: int = 1_000_000,
    ) -> Trace:
        """One SSA trajectory, sampled onto a uniform grid.

        The trajectory is piecewise constant; sampling uses the value
        in force at each grid time.
        """
        if t_end <= 0:
            raise SimulationError(f"t_end must be positive, got {t_end}")
        rng = rng if rng is not None else np.random.default_rng()
        counts = self.initial_counts()
        base_env = self._base_env()
        grid = np.linspace(0.0, t_end, grid_points)
        samples = {name: np.empty(grid_points) for name in self.species_ids}
        grid_index = 0
        t = 0.0
        events = 0

        def record_until(limit: float) -> None:
            nonlocal grid_index
            while grid_index < grid_points and grid[grid_index] <= limit:
                for name in self.species_ids:
                    samples[name][grid_index] = counts[name]
                grid_index += 1

        while t < t_end:
            if events >= max_events:
                raise SimulationError(
                    f"SSA exceeded {max_events} events at t={t:g}"
                )
            env = dict(base_env)
            env.update(counts)
            env["time"] = t
            propensities = []
            for math, locals_env, _ in self._reactions:
                call_env = dict(env, **locals_env) if locals_env else env
                try:
                    a = self.evaluator.evaluate(math, call_env)
                except MathError as exc:
                    raise SimulationError(
                        f"propensity evaluation failed: {exc}"
                    ) from exc
                propensities.append(max(0.0, a))
            total = float(sum(propensities))
            if total <= 0.0:
                break  # absorbed: nothing can fire any more
            wait = rng.exponential(1.0 / total)
            next_t = t + wait
            record_until(min(next_t, t_end))
            if next_t > t_end:
                t = t_end
                break
            choice = rng.uniform(0.0, total)
            cumulative = 0.0
            chosen = len(self._reactions) - 1
            for index, a in enumerate(propensities):
                cumulative += a
                if choice <= cumulative:
                    chosen = index
                    break
            _, _, deltas = self._reactions[chosen]
            for species_id, delta in deltas.items():
                if species_id in self._dynamic:
                    counts[species_id] = max(
                        0.0, counts[species_id] + delta
                    )
            t = next_t
            events += 1
        record_until(t_end)
        # Fill any tail (absorbed state) with the final counts.
        while grid_index < grid_points:
            for name in self.species_ids:
                samples[name][grid_index] = counts[name]
            grid_index += 1
        return Trace(grid, samples)

    def run_many(
        self,
        runs: int,
        t_end: float,
        seed: int = 0,
        grid_points: int = 101,
    ) -> List[Trace]:
        """Independent trajectories with a seeded generator sequence
        (deterministic across processes — benchmarks rely on it)."""
        return [
            self.run(
                t_end,
                rng=np.random.default_rng(seed + index),
                grid_points=grid_points,
            )
            for index in range(runs)
        ]


def simulate_stochastic(
    model: Model,
    t_end: float,
    runs: int = 1,
    seed: int = 0,
    grid_points: int = 101,
) -> List[Trace]:
    """One-call SSA simulation returning ``runs`` trajectories."""
    simulator = GillespieSimulator(model)
    return simulator.run_many(runs, t_end, seed, grid_points)
