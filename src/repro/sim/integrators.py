"""ODE integrators: classic RK4 and adaptive RKF45.

Pure-numpy implementations — the library carries its own integration
substrate rather than depending on an external solver, in the spirit
of building every subsystem the reproduction needs.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["rk4", "rkf45"]

Derivative = Callable[[float, np.ndarray], np.ndarray]


def rk4(
    f: Derivative,
    y0: np.ndarray,
    t0: float,
    t1: float,
    steps: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fixed-step fourth-order Runge-Kutta.

    Returns ``(times, states)`` with ``steps + 1`` samples including
    both endpoints.
    """
    if steps < 1:
        raise SimulationError(f"rk4 needs at least one step, got {steps}")
    if t1 <= t0:
        raise SimulationError(f"empty time span [{t0}, {t1}]")
    h = (t1 - t0) / steps
    times = np.linspace(t0, t1, steps + 1)
    states = np.empty((steps + 1, len(y0)), dtype=float)
    y = np.asarray(y0, dtype=float).copy()
    states[0] = y
    for index in range(steps):
        t = times[index]
        k1 = f(t, y)
        k2 = f(t + h / 2.0, y + h * k1 / 2.0)
        k3 = f(t + h / 2.0, y + h * k2 / 2.0)
        k4 = f(t + h, y + h * k3)
        y = y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        if not np.all(np.isfinite(y)):
            raise SimulationError(
                f"integration diverged at t={times[index + 1]:g}"
            )
        states[index + 1] = y
    return times, states


# Fehlberg coefficients (RKF45).
_A = (
    (),
    (1 / 4,),
    (3 / 32, 9 / 32),
    (1932 / 2197, -7200 / 2197, 7296 / 2197),
    (439 / 216, -8.0, 3680 / 513, -845 / 4104),
    (-8 / 27, 2.0, -3544 / 2565, 1859 / 4104, -11 / 40),
)
_C = (0.0, 1 / 4, 3 / 8, 12 / 13, 1.0, 1 / 2)
_B5 = (16 / 135, 0.0, 6656 / 12825, 28561 / 56430, -9 / 50, 2 / 55)
_B4 = (25 / 216, 0.0, 1408 / 2565, 2197 / 4104, -1 / 5, 0.0)


def rkf45(
    f: Derivative,
    y0: np.ndarray,
    t0: float,
    t1: float,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    h0: float = None,
    max_steps: int = 100_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Adaptive Runge-Kutta-Fehlberg 4(5).

    Returns the accepted ``(times, states)`` including both endpoints.
    Step size adapts to the mixed absolute/relative error estimate.
    """
    if t1 <= t0:
        raise SimulationError(f"empty time span [{t0}, {t1}]")
    y = np.asarray(y0, dtype=float).copy()
    t = float(t0)
    h = h0 if h0 is not None else (t1 - t0) / 100.0
    times: List[float] = [t]
    states: List[np.ndarray] = [y.copy()]
    steps = 0
    while t < t1:
        if steps >= max_steps:
            raise SimulationError(
                f"rkf45 exceeded {max_steps} steps at t={t:g}"
            )
        steps += 1
        h = min(h, t1 - t)
        k = []
        for stage in range(6):
            yi = y.copy()
            for j, a in enumerate(_A[stage]):
                yi = yi + h * a * k[j]
            k.append(f(t + _C[stage] * h, yi))
        y5 = y + h * sum(b * ki for b, ki in zip(_B5, k))
        y4 = y + h * sum(b * ki for b, ki in zip(_B4, k))
        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
        error = float(np.max(np.abs(y5 - y4) / scale)) if len(y) else 0.0
        if error <= 1.0 or h <= 1e-14 * max(1.0, abs(t1)):
            t += h
            y = y5
            if not np.all(np.isfinite(y)):
                raise SimulationError(f"integration diverged at t={t:g}")
            times.append(t)
            states.append(y.copy())
        # Standard step-size controller with safety factor.
        if error == 0.0:
            factor = 2.0
        else:
            factor = min(2.0, max(0.1, 0.9 * error ** (-0.2)))
        h *= factor
    return np.asarray(times), np.asarray(states)
