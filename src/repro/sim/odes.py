"""Deterministic (ODE) simulation of SBML models.

Builds the rate equations from a model's reactions, rules and events,
then integrates them with the library's RK4/RKF45 integrators.  The
simulator covers the SBML subset the corpus and examples use:

* mass-action and Michaelis–Menten kinetic laws (paper Figs 10-12) and
  arbitrary MathML rate expressions,
* reaction-local parameters (shadowing globals),
* assignment rules (recomputed at every evaluation), rate rules,
* initial assignments (evaluated once at t=0),
* events with optional delays, firing on a rising trigger edge,
* concentration- and amount-based species (a kinetic law yields
  substance/time; concentration species divide by compartment volume).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MathError, SimulationError
from repro.mathml.ast import MathNode
from repro.mathml.evaluator import Evaluator
from repro.sbml.components import AssignmentRule, RateRule
from repro.sbml.model import Model
from repro.sim.integrators import rk4
from repro.sim.trace import Trace

__all__ = ["OdeSimulator", "simulate"]


class OdeSimulator:
    """Deterministic simulator bound to one model."""

    def __init__(self, model: Model):
        self.model = model
        self.evaluator = Evaluator(model.function_table())
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        model = self.model
        rate_ruled = {
            rule.variable
            for rule in model.rules
            if isinstance(rule, RateRule) and rule.variable
        }
        assigned = {
            rule.variable
            for rule in model.rules
            if isinstance(rule, AssignmentRule) and rule.variable
        }

        # Dynamic state: species changed by reactions or rate rules,
        # plus any parameter/compartment under a rate rule.  Boundary
        # and constant species stay fixed unless a rate rule drives
        # them; assignment-ruled quantities are derived, not state.
        self.state_ids: List[str] = []
        for species in model.species:
            if species.id is None or species.id in assigned:
                continue
            if species.constant:
                continue
            if species.boundary_condition and species.id not in rate_ruled:
                continue
            self.state_ids.append(species.id)
        for parameter in model.parameters:
            if parameter.id in rate_ruled and parameter.id not in assigned:
                self.state_ids.append(parameter.id)
        for compartment in model.compartments:
            if compartment.id in rate_ruled and compartment.id not in assigned:
                self.state_ids.append(compartment.id)
        self._state_pos = {name: i for i, name in enumerate(self.state_ids)}

        self._rate_rules: List[Tuple[str, MathNode]] = [
            (rule.variable, rule.math)
            for rule in model.rules
            if isinstance(rule, RateRule) and rule.variable and rule.math
        ]
        self._assignment_rules: List[Tuple[str, MathNode]] = [
            (rule.variable, rule.math)
            for rule in model.rules
            if isinstance(rule, AssignmentRule) and rule.variable and rule.math
        ]

        # Per-reaction: (kinetic math, local-parameter env, species
        # deltas, concentration divisor per species).
        self._reactions = []
        self._species_volume: Dict[str, float] = {}
        self._species_is_conc: Dict[str, bool] = {}
        for species in model.species:
            if species.id is None:
                continue
            compartment = model.get_compartment(species.compartment or "")
            volume = (
                compartment.size
                if compartment is not None and compartment.size is not None
                else 1.0
            )
            self._species_volume[species.id] = volume
            self._species_is_conc[species.id] = (
                species.initial_concentration is not None
                and not species.has_only_substance_units
            )
        for reaction in model.reactions:
            law = reaction.kinetic_law
            if law is None or law.math is None:
                continue
            locals_env = {
                parameter.id: parameter.value
                for parameter in law.parameters
                if parameter.id is not None and parameter.value is not None
            }
            deltas: Dict[str, float] = {}
            for reference in reaction.reactants:
                deltas[reference.species] = (
                    deltas.get(reference.species, 0.0) - reference.stoichiometry
                )
            for reference in reaction.products:
                deltas[reference.species] = (
                    deltas.get(reference.species, 0.0) + reference.stoichiometry
                )
            self._reactions.append((law.math, locals_env, deltas))

        self._events = []
        for event in model.events:
            if event.trigger is None or event.trigger.math is None:
                continue
            delay_math = event.delay.math if event.delay is not None else None
            assignments = [
                (assignment.variable, assignment.math)
                for assignment in event.assignments
                if assignment.math is not None
            ]
            self._events.append((event.trigger.math, delay_math, assignments))

    # ------------------------------------------------------------------

    def initial_environment(self) -> Dict[str, float]:
        """Quantity values at t = 0, initial assignments applied."""
        env: Dict[str, float] = {"time": 0.0}
        for compartment in self.model.compartments:
            if compartment.id is not None:
                env[compartment.id] = (
                    compartment.size if compartment.size is not None else 1.0
                )
        for parameter in self.model.parameters:
            if parameter.id is not None:
                env[parameter.id] = (
                    parameter.value if parameter.value is not None else 0.0
                )
        for species in self.model.species:
            if species.id is not None:
                value = species.initial_value()
                env[species.id] = value if value is not None else 0.0
        pending = [
            ia
            for ia in self.model.initial_assignments
            if ia.math is not None and ia.symbol is not None
        ]
        for _ in range(max(1, len(pending))):
            remaining = []
            for ia in pending:
                try:
                    env[ia.symbol] = self.evaluator.evaluate(ia.math, env)
                except MathError:
                    remaining.append(ia)
            if not remaining:
                break
            pending = remaining
        self._apply_assignment_rules(env)
        return env

    def _apply_assignment_rules(self, env: Dict[str, float]) -> None:
        # Two sweeps handle one level of rule-to-rule dependency
        # without a topological sort.
        for _ in range(2):
            for variable, math in self._assignment_rules:
                try:
                    env[variable] = self.evaluator.evaluate(math, env)
                except MathError as exc:
                    raise SimulationError(
                        f"assignment rule for {variable!r} failed: {exc}"
                    ) from exc

    def _env_from_state(
        self, t: float, y: np.ndarray, base: Dict[str, float]
    ) -> Dict[str, float]:
        env = dict(base)
        env["time"] = t
        for name, position in self._state_pos.items():
            env[name] = float(y[position])
        self._apply_assignment_rules(env)
        return env

    def derivatives(
        self, t: float, y: np.ndarray, base_env: Dict[str, float]
    ) -> np.ndarray:
        """dy/dt at state ``y`` (kinetic laws give substance/time;
        concentration species divide by their compartment volume)."""
        env = self._env_from_state(t, y, base_env)
        dydt = np.zeros(len(self.state_ids))
        for math, locals_env, deltas in self._reactions:
            if locals_env:
                call_env = dict(env)
                call_env.update(locals_env)
            else:
                call_env = env
            try:
                rate = self.evaluator.evaluate(math, call_env)
            except MathError as exc:
                raise SimulationError(f"kinetic law failed: {exc}") from exc
            for species_id, delta in deltas.items():
                position = self._state_pos.get(species_id)
                if position is None:
                    continue
                flow = delta * rate
                if self._species_is_conc.get(species_id, False):
                    flow /= self._species_volume[species_id]
                dydt[position] += flow
        for variable, math in self._rate_rules:
            position = self._state_pos.get(variable)
            if position is None:
                continue
            try:
                dydt[position] += self.evaluator.evaluate(math, env)
            except MathError as exc:
                raise SimulationError(
                    f"rate rule for {variable!r} failed: {exc}"
                ) from exc
        return dydt

    # ------------------------------------------------------------------

    def run(
        self,
        t_end: float,
        steps: int = 1000,
        record: Optional[List[str]] = None,
    ) -> Trace:
        """Integrate to ``t_end`` with ``steps`` fixed RK4 steps.

        Events are checked after every step (rising-edge semantics,
        delays honoured via a pending queue).  ``record`` defaults to
        every species.
        """
        if t_end <= 0:
            raise SimulationError(f"t_end must be positive, got {t_end}")
        base_env = self.initial_environment()
        y = np.array(
            [base_env[name] for name in self.state_ids], dtype=float
        )
        record_ids = record or [
            species.id for species in self.model.species if species.id
        ]
        times = np.linspace(0.0, t_end, steps + 1)
        samples = {name: [] for name in record_ids}

        trigger_state = [
            self._eval_trigger(trigger, 0.0, y, base_env)
            for trigger, _, _ in self._events
        ]
        pending: List[Tuple[float, List[Tuple[str, MathNode]]]] = []

        def sample(t: float, y: np.ndarray) -> None:
            env = self._env_from_state(t, y, base_env)
            for name in record_ids:
                samples[name].append(env.get(name, 0.0))

        sample(0.0, y)
        h = t_end / steps
        f = lambda t, state: self.derivatives(t, state, base_env)
        for index in range(steps):
            t = times[index]
            _, states = rk4(f, y, t, t + h, 1)
            y = states[-1]
            t_next = times[index + 1]
            # Fire due delayed events.
            still_pending = []
            for due, assignments in pending:
                if due <= t_next:
                    y = self._fire(assignments, t_next, y, base_env)
                else:
                    still_pending.append((due, assignments))
            pending = still_pending
            # Rising-edge triggers.
            for event_index, (trigger, delay_math, assignments) in enumerate(
                self._events
            ):
                now = self._eval_trigger(trigger, t_next, y, base_env)
                if now and not trigger_state[event_index]:
                    if delay_math is None:
                        y = self._fire(assignments, t_next, y, base_env)
                    else:
                        env = self._env_from_state(t_next, y, base_env)
                        delay = self.evaluator.evaluate(delay_math, env)
                        pending.append((t_next + delay, assignments))
                trigger_state[event_index] = now
            sample(t_next, y)
        return Trace(times, samples)

    def _eval_trigger(
        self, trigger: MathNode, t: float, y: np.ndarray, base_env
    ) -> bool:
        env = self._env_from_state(t, y, base_env)
        try:
            return self.evaluator.evaluate(trigger, env) != 0.0
        except MathError:
            return False

    def _fire(
        self,
        assignments: List[Tuple[str, MathNode]],
        t: float,
        y: np.ndarray,
        base_env: Dict[str, float],
    ) -> np.ndarray:
        env = self._env_from_state(t, y, base_env)
        # Evaluate all right-hand sides first (simultaneous semantics).
        values = {
            variable: self.evaluator.evaluate(math, env)
            for variable, math in assignments
        }
        y = y.copy()
        for variable, value in values.items():
            position = self._state_pos.get(variable)
            if position is not None:
                y[position] = value
            else:
                base_env[variable] = value
        return y


def simulate(
    model: Model,
    t_end: float,
    steps: int = 1000,
    record: Optional[List[str]] = None,
) -> Trace:
    """One-call deterministic simulation (paper §4.1.2's workflow)."""
    return OdeSimulator(model).run(t_end, steps, record)
