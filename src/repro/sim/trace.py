"""Simulation traces: time series of model quantities.

Both simulators produce a :class:`Trace`; the evaluation tools
(§4.1.2 visual comparison, §4.1.3 residual sum of squares, §4.1.4
model checking) consume them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = ["Trace"]


class Trace:
    """A time series over named columns.

    ``times`` is strictly increasing; ``columns`` maps quantity ids to
    arrays aligned with ``times``.
    """

    def __init__(self, times, columns: Dict[str, Sequence[float]]):
        self.times = np.asarray(times, dtype=float)
        self.columns: Dict[str, np.ndarray] = {
            name: np.asarray(values, dtype=float)
            for name, values in columns.items()
        }
        for name, values in self.columns.items():
            if values.shape != self.times.shape:
                raise SimulationError(
                    f"column {name!r} has {values.shape[0]} samples, "
                    f"expected {self.times.shape[0]}"
                )

    def __len__(self) -> int:
        return len(self.times)

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    @property
    def species(self) -> List[str]:
        """Column names, sorted for deterministic iteration."""
        return sorted(self.columns)

    def column(self, name: str) -> np.ndarray:
        """The series for one quantity."""
        try:
            return self.columns[name]
        except KeyError:
            raise SimulationError(f"trace has no column {name!r}") from None

    def at(self, time: float) -> Dict[str, float]:
        """Linearly interpolated state at an arbitrary time."""
        return {
            name: float(np.interp(time, self.times, values))
            for name, values in self.columns.items()
        }

    def final(self) -> Dict[str, float]:
        """The last sample."""
        return {
            name: float(values[-1]) for name, values in self.columns.items()
        }

    def slice_columns(self, names: Iterable[str]) -> "Trace":
        """A trace restricted to the given columns."""
        return Trace(
            self.times, {name: self.column(name) for name in names}
        )

    def resample(self, times) -> "Trace":
        """Linear-interpolation resampling onto a new time grid."""
        grid = np.asarray(times, dtype=float)
        return Trace(
            grid,
            {
                name: np.interp(grid, self.times, values)
                for name, values in self.columns.items()
            },
        )

    def to_rows(self) -> List[List[float]]:
        """Rows of ``[time, col1, col2, ...]`` in :attr:`species`
        order (the §4.1.3 "file of time series data")."""
        names = self.species
        rows = []
        for index, time in enumerate(self.times):
            rows.append(
                [float(time)] + [float(self.columns[n][index]) for n in names]
            )
        return rows

    def write_csv(self, path) -> None:
        """Write the trace as CSV with a header row."""
        names = self.species
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(",".join(["time"] + names) + "\n")
            for row in self.to_rows():
                handle.write(",".join(f"{value:.10g}" for value in row) + "\n")

    @classmethod
    def read_csv(cls, path) -> "Trace":
        """Read a trace written by :meth:`write_csv`."""
        with open(path, "r", encoding="utf-8") as handle:
            header = handle.readline().strip().split(",")
            data = [
                [float(cell) for cell in line.strip().split(",")]
                for line in handle
                if line.strip()
            ]
        if header[0] != "time":
            raise SimulationError(f"{path}: first column must be 'time'")
        matrix = np.asarray(data, dtype=float)
        if matrix.size == 0:
            raise SimulationError(f"{path}: empty trace")
        return cls(
            matrix[:, 0],
            {
                name: matrix[:, index + 1]
                for index, name in enumerate(header[1:])
            },
        )

    def sparkline(self, name: str, width: int = 60) -> str:
        """ASCII sparkline of one column (the programmatic stand-in
        for §4.1.2's visual inspection)."""
        blocks = " ▁▂▃▄▅▆▇█"
        values = self.column(name)
        if len(values) > width:
            positions = np.linspace(0, len(values) - 1, width).astype(int)
            values = values[positions]
        low, high = float(np.min(values)), float(np.max(values))
        if high == low:
            return blocks[1] * len(values)
        normalised = (values - low) / (high - low)
        return "".join(
            blocks[1 + int(round(v * (len(blocks) - 2)))] for v in normalised
        )
