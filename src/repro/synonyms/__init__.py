"""Synonym tables: local name-equivalence without database lookups.

Implements the paper's alternative to semanticSBML's annotation
databases — small, local, extensible synonym rings plus aggressive
name normalisation.
"""

from repro.synonyms.builtin import BUILTIN_RINGS, builtin_synonyms
from repro.synonyms.table import SynonymTable, normalize_name

__all__ = [
    "SynonymTable",
    "normalize_name",
    "builtin_synonyms",
    "BUILTIN_RINGS",
]
