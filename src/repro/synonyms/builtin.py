"""Built-in synonym rings for common biochemical entities.

The paper replaces semanticSBML's 54,929-entry annotation database
with "smaller [synonym tables that] contain only the entries required
for the composition".  This module ships the starter table: common
metabolites, currency molecules, compartment spellings and pathway
species names as they typically appear in BioModels-style SBML.
"""

from __future__ import annotations

from repro.synonyms.table import SynonymTable

__all__ = ["builtin_synonyms", "BUILTIN_RINGS"]

BUILTIN_RINGS = [
    # Currency metabolites
    ["ATP", "adenosine triphosphate", "adenosine 5'-triphosphate"],
    ["ADP", "adenosine diphosphate", "adenosine 5'-diphosphate"],
    ["AMP", "adenosine monophosphate"],
    ["NAD", "NAD+", "nicotinamide adenine dinucleotide"],
    ["NADH", "NADH2", "reduced nicotinamide adenine dinucleotide"],
    ["NADP", "NADP+", "nicotinamide adenine dinucleotide phosphate"],
    ["NADPH", "reduced nicotinamide adenine dinucleotide phosphate"],
    ["FAD", "flavin adenine dinucleotide"],
    ["FADH2", "reduced flavin adenine dinucleotide"],
    ["GTP", "guanosine triphosphate"],
    ["GDP", "guanosine diphosphate"],
    ["Pi", "phosphate", "inorganic phosphate", "orthophosphate"],
    ["PPi", "pyrophosphate", "diphosphate"],
    ["CoA", "coenzyme A", "CoA-SH"],
    ["acetyl-CoA", "acetyl coenzyme A", "AcCoA"],
    # Small molecules
    ["H2O", "water"],
    ["CO2", "carbon dioxide"],
    ["O2", "oxygen", "dioxygen"],
    ["H", "H+", "proton", "hydrogen ion"],
    ["NH3", "ammonia"],
    ["NH4", "NH4+", "ammonium"],
    # Glycolysis intermediates
    ["glucose", "Glc", "D-glucose", "dextrose"],
    ["glucose-6-phosphate", "G6P", "glucose 6 phosphate"],
    ["fructose-6-phosphate", "F6P", "fructose 6 phosphate"],
    ["fructose-1,6-bisphosphate", "F16BP", "FBP"],
    ["glyceraldehyde-3-phosphate", "G3P", "GAP"],
    ["dihydroxyacetone phosphate", "DHAP"],
    ["phosphoenolpyruvate", "PEP"],
    ["pyruvate", "Pyr", "pyruvic acid"],
    ["lactate", "Lac", "lactic acid"],
    ["citrate", "citric acid"],
    ["oxaloacetate", "OAA"],
    ["alpha-ketoglutarate", "2-oxoglutarate", "AKG"],
    # Signalling
    ["MAPK", "mitogen-activated protein kinase", "ERK"],
    ["MAPKK", "MAP kinase kinase", "MEK", "MAP2K"],
    ["MAPKKK", "MAP kinase kinase kinase", "RAF", "MAP3K"],
    ["cAMP", "cyclic AMP", "cyclic adenosine monophosphate"],
    ["IP3", "inositol trisphosphate", "inositol 1,4,5-trisphosphate"],
    ["DAG", "diacylglycerol"],
    ["PKA", "protein kinase A", "cAMP-dependent protein kinase"],
    ["PKC", "protein kinase C"],
    ["calcium", "Ca", "Ca2+", "Ca++"],
    # Compartment spellings
    ["cytosol", "cytoplasm", "cell", "intracellular"],
    ["extracellular", "medium", "outside", "environment"],
    ["nucleus", "nuclear compartment"],
    ["mitochondrion", "mitochondria", "mito"],
    ["endoplasmic reticulum", "ER"],
]


def builtin_synonyms() -> SynonymTable:
    """A fresh synonym table seeded with the built-in rings."""
    return SynonymTable(BUILTIN_RINGS)
