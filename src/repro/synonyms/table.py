"""Local synonym tables.

The paper's answer to "arbitrary names and synonymy" (§3): instead of
querying remote biological databases like semanticSBML does, keep a
*small local* synonym table with "only the entries required for the
composition", extensible as new biological entities appear.

A :class:`SynonymTable` partitions names into equivalence classes
(synonym rings).  Lookup is by *normalised* name — case-insensitive,
whitespace/punctuation-insensitive — so ``"ATP"``, ``"atp"`` and
``"Adenosine triphosphate"`` can land in the same ring.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set

__all__ = ["normalize_name", "SynonymTable"]

_NORMALIZE_RE = re.compile(r"[\s\-_.,'()\[\]]+")


def normalize_name(name: str) -> str:
    """Normalise a biological entity name for matching.

    Lower-cases, strips whitespace and common punctuation.  Greek
    letters frequently spelled out in model names are folded to their
    spelled form.
    """
    lowered = name.strip().lower()
    for greek, spelled in (
        ("α", "alpha"),
        ("β", "beta"),
        ("γ", "gamma"),
        ("δ", "delta"),
        ("κ", "kappa"),
    ):
        lowered = lowered.replace(greek, spelled)
    return _NORMALIZE_RE.sub("", lowered)


class SynonymTable:
    """Equivalence classes of entity names.

    The table stores rings of synonymous names; two names are
    synonymous iff their normalised forms share a ring (or are equal,
    which always holds).  Rings can be extended at runtime — the paper
    notes "new biological entities can be added to support composition,
    as needed".
    """

    def __init__(self, rings: Iterable[Iterable[str]] = ()):
        self._ring_of: Dict[str, int] = {}
        self._rings: List[Set[str]] = []
        # raw name -> canonical representative.  Canonicalisation is
        # on the composition hot path (every name-keyed index probe),
        # and a table outlives many lookups of the same labels — a
        # session composing n models re-keys the accumulator's species
        # on every step.  The memo is lock-free under concurrent
        # lookups (the parallel executor probes one table from many
        # threads): single dict reads/writes are atomic under the GIL
        # and the cached value is a pure function of the rings, so a
        # racing duplicate write is harmless.  Ring *changes* swap in
        # a fresh dict (never ``.clear()``) — a lookup that raced the
        # change writes its stale result into the abandoned dict,
        # which nobody reads again.
        self._canonical_cache: Dict[str, str] = {}
        # Content fingerprint memo (see :meth:`fingerprint`); any ring
        # change resets it.
        self._fingerprint: str = ""
        for ring in rings:
            self.add_ring(ring)

    def __len__(self) -> int:
        return len(self._rings)

    def add_ring(self, names: Iterable[str]) -> None:
        """Add a set of mutually synonymous names.

        If any name already belongs to a ring, the rings are united
        (synonymy is transitive by construction).
        """
        normalized = [normalize_name(name) for name in names]
        normalized = [name for name in normalized if name]
        if not normalized:
            return
        existing = {
            self._ring_of[name] for name in normalized if name in self._ring_of
        }
        if existing:
            target_index = min(existing)
        else:
            target_index = len(self._rings)
            self._rings.append(set())
        target = self._rings[target_index]
        # Merge any other rings these names already belong to.
        for index in sorted(existing - {target_index}, reverse=True):
            merged = self._rings[index]
            target |= merged
            merged.clear()
        target.update(normalized)
        for name in target:
            self._ring_of[name] = target_index
        # Swap, don't clear: concurrent canonical() calls may still
        # hold the old dict and would otherwise repopulate it with
        # now-stale representatives.
        self._canonical_cache = {}
        self._fingerprint = ""

    def add_synonym(self, name: str, synonym: str) -> None:
        """Declare two names synonymous."""
        self.add_ring([name, synonym])

    def are_synonyms(self, first: str, second: str) -> bool:
        """Whether two names are equal or synonymous (paper §2:
        ``φ(n1) ≈ φ(n2)``)."""
        a = normalize_name(first)
        b = normalize_name(second)
        if a == b:
            return True
        ring_a = self._ring_of.get(a)
        return ring_a is not None and ring_a == self._ring_of.get(b)

    def canonical(self, name: str) -> str:
        """A deterministic representative of the name's ring (the
        lexicographically smallest member), or the normalised name
        itself when it has no ring."""
        # Bind the memo once: if add_ring swaps in a fresh dict midway
        # through this call, the write below lands in the abandoned
        # dict instead of poisoning the new one.
        cache = self._canonical_cache
        cached = cache.get(name)
        if cached is not None:
            return cached
        normalized = normalize_name(name)
        index = self._ring_of.get(normalized)
        if index is None:
            result = normalized
        else:
            members = self._rings[index]
            result = min(members) if members else normalized
        cache[name] = result
        return result

    def fingerprint(self) -> str:
        """A content digest of the ring partition.

        Two tables with identical rings — however built, in whatever
        order — share one fingerprint, so artifacts keyed on name
        canonicalisation (the per-model index rows of
        :class:`~repro.core.compose.ModelIndexSet`) can be reused
        across processes and on-disk store entries.  Memoised; any
        :meth:`add_ring` invalidates the memo.
        """
        if not self._fingerprint:
            import hashlib

            digest = hashlib.blake2b(digest_size=16)
            for ring in sorted(
                tuple(sorted(ring)) for ring in self._rings if ring
            ):
                digest.update("\t".join(ring).encode("utf-8"))
                digest.update(b"\n")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def synonyms_of(self, name: str) -> Set[str]:
        """All known synonyms (normalised), including the name."""
        normalized = normalize_name(name)
        index = self._ring_of.get(normalized)
        if index is None:
            return {normalized}
        return set(self._rings[index])

    # ------------------------------------------------------------------
    # Persistence (TSV: one ring per line, tab-separated)
    # ------------------------------------------------------------------

    @classmethod
    def from_tsv(cls, path) -> "SynonymTable":
        """Load a table from a TSV file (one synonym ring per line)."""
        table = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                table.add_ring(line.split("\t"))
        return table

    def to_tsv(self, path) -> None:
        """Write the table to a TSV file."""
        with open(path, "w", encoding="utf-8") as handle:
            for ring in self._rings:
                if ring:
                    handle.write("\t".join(sorted(ring)) + "\n")
