"""Unit system: SBML unit kinds, definitions, conversion (paper Fig 6).

Composition must decide whether two unit definitions denote the same
unit, and resolve conflicts where "values in different models may be
defined using different units" (paper §3).  This package provides the
dimensional algebra and the mole/molecule rate-constant conversions.
"""

from repro.units.convert import (
    AVOGADRO,
    concentration_to_molecules,
    deterministic_to_stochastic,
    molecules_to_concentration,
    reaction_order_of_stoichiometry,
    stochastic_to_deterministic,
)
from repro.units.definitions import CanonicalUnit, Unit, UnitDefinition
from repro.units.model_convert import (
    ConversionReport,
    to_deterministic,
    to_stochastic,
)
from repro.units.kinds import (
    BASE_KINDS,
    DIMENSION_NAMES,
    is_known_kind,
    kind_decomposition,
    normalize_kind,
)
from repro.units.registry import UnitRegistry, builtin_definitions

__all__ = [
    "Unit",
    "UnitDefinition",
    "CanonicalUnit",
    "UnitRegistry",
    "builtin_definitions",
    "BASE_KINDS",
    "DIMENSION_NAMES",
    "is_known_kind",
    "kind_decomposition",
    "normalize_kind",
    "AVOGADRO",
    "deterministic_to_stochastic",
    "stochastic_to_deterministic",
    "concentration_to_molecules",
    "molecules_to_concentration",
    "reaction_order_of_stoichiometry",
    "to_stochastic",
    "to_deterministic",
    "ConversionReport",
]
