"""Mole ↔ molecule conversions — the paper's Figure 6.

Deterministic (concentration-based) models express amounts in moles
per litre and rate constants in ``M s⁻¹``-derived units; stochastic
(population-based) models count discrete molecules.  When one model of
a merging pair uses each convention, rate constants conflict *even
though they describe the same physics*.  Figure 6 of the paper (after
Wilkinson, *Stochastic Modelling for Systems Biology*) gives the
standard conversion for mass-action reactions of order 0, 1 and 2:

* zeroth order ``0 → X``:   ``c = nA · k · V``
* first order ``X → ?``:    ``c = k``
* second order ``X + Y → ?``: ``c = k / (nA · V)``

where ``k`` is the deterministic rate constant, ``c`` the stochastic
one, ``nA`` Avogadro's number and ``V`` the compartment volume.
"""

from __future__ import annotations

from repro.errors import UnitError
from repro.mathml.evaluator import AVOGADRO

__all__ = [
    "AVOGADRO",
    "deterministic_to_stochastic",
    "stochastic_to_deterministic",
    "concentration_to_molecules",
    "molecules_to_concentration",
    "reaction_order_of_stoichiometry",
]


def _check_order_and_volume(order: int, volume: float) -> None:
    if order not in (0, 1, 2):
        raise UnitError(
            f"Figure 6 conversions cover orders 0-2, got order {order}"
        )
    if volume <= 0.0:
        raise UnitError(f"compartment volume must be positive, got {volume}")


def deterministic_to_stochastic(
    k: float, order: int, volume: float, avogadro: float = AVOGADRO
) -> float:
    """Convert a deterministic rate constant to its stochastic
    (molecules-based) equivalent ``c`` for a mass-action reaction of
    the given order in a compartment of ``volume`` litres."""
    _check_order_and_volume(order, volume)
    if order == 0:
        return avogadro * k * volume
    if order == 1:
        return k
    return k / (avogadro * volume)


def stochastic_to_deterministic(
    c: float, order: int, volume: float, avogadro: float = AVOGADRO
) -> float:
    """Inverse of :func:`deterministic_to_stochastic`."""
    _check_order_and_volume(order, volume)
    if order == 0:
        return c / (avogadro * volume)
    if order == 1:
        return c
    return c * avogadro * volume


def concentration_to_molecules(
    concentration: float, volume: float, avogadro: float = AVOGADRO
) -> float:
    """``x = nA · [X] · V`` — molecules corresponding to a molar
    concentration in a compartment of ``volume`` litres (Figure 6)."""
    if volume <= 0.0:
        raise UnitError(f"compartment volume must be positive, got {volume}")
    return avogadro * concentration * volume


def molecules_to_concentration(
    molecules: float, volume: float, avogadro: float = AVOGADRO
) -> float:
    """Inverse of :func:`concentration_to_molecules`."""
    if volume <= 0.0:
        raise UnitError(f"compartment volume must be positive, got {volume}")
    return molecules / (avogadro * volume)


def reaction_order_of_stoichiometry(reactant_stoichiometries) -> int:
    """Total reaction order implied by mass-action reactant
    stoichiometries (``A + B →`` is order 2, ``2A →`` is order 2).

    Raises :class:`UnitError` for non-integer stoichiometry, where
    mass-action order is undefined.
    """
    total = 0.0
    for stoichiometry in reactant_stoichiometries:
        if stoichiometry < 0:
            raise UnitError(
                f"negative stoichiometry {stoichiometry} has no order"
            )
        total += stoichiometry
    if not float(total).is_integer():
        raise UnitError(
            f"non-integer total stoichiometry {total} has no mass-action order"
        )
    return int(total)
