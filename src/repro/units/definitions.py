"""SBML unit definitions and their canonical (dimensional) form.

A ``<unitDefinition>`` is a product of ``<unit>`` factors, each of the
form ``(multiplier * 10^scale * kind)^exponent``.  Two definitions are
the *same unit* iff their canonical forms — an overall factor plus a
dimension vector — are equal; this is the "checking the list of known
units" comparison the paper uses for unit-definition components, made
exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import IncompatibleUnitsError
from repro.units.kinds import DIMENSION_NAMES, kind_decomposition, normalize_kind

__all__ = ["Unit", "UnitDefinition", "CanonicalUnit"]


@dataclass(frozen=True)
class CanonicalUnit:
    """A unit reduced to ``factor × Π base_dimension^exponent``.

    ``factor`` is the multiplier into SI-coherent base units;
    ``dims`` is the exponent vector over
    :data:`~repro.units.kinds.DIMENSION_NAMES`.
    """

    factor: float
    dims: Tuple[int, ...]

    def __mul__(self, other: "CanonicalUnit") -> "CanonicalUnit":
        return CanonicalUnit(
            self.factor * other.factor,
            tuple(a + b for a, b in zip(self.dims, other.dims)),
        )

    def __truediv__(self, other: "CanonicalUnit") -> "CanonicalUnit":
        return CanonicalUnit(
            self.factor / other.factor,
            tuple(a - b for a, b in zip(self.dims, other.dims)),
        )

    def __pow__(self, exponent: int) -> "CanonicalUnit":
        return CanonicalUnit(
            self.factor**exponent,
            tuple(d * exponent for d in self.dims),
        )

    @property
    def is_dimensionless(self) -> bool:
        """Whether the dimension vector is all zeros."""
        return all(d == 0 for d in self.dims)

    def same_dimensions(self, other: "CanonicalUnit") -> bool:
        """Whether two units measure the same physical quantity."""
        return self.dims == other.dims

    def conversion_factor(self, other: "CanonicalUnit") -> float:
        """Factor ``f`` such that ``value[self] * f == value[other]``.

        Raises :class:`IncompatibleUnitsError` when dimensions differ
        (e.g. moles vs. molecules — conversion then needs context like
        the Figure 6 reaction-order rules, not a plain factor).
        """
        if not self.same_dimensions(other):
            raise IncompatibleUnitsError(
                f"cannot convert between {self.describe()} and "
                f"{other.describe()}"
            )
        return self.factor / other.factor

    def approx_equal(self, other: "CanonicalUnit", rel_tol: float = 1e-9) -> bool:
        """Equality up to floating-point rounding on the factor."""
        if not self.same_dimensions(other):
            return False
        if self.factor == other.factor:
            return True
        scale = max(abs(self.factor), abs(other.factor))
        return abs(self.factor - other.factor) <= rel_tol * scale

    def describe(self) -> str:
        """Human-readable form, e.g. ``1e-3 * metre^3``."""
        parts = [
            f"{name}^{exponent}" if exponent != 1 else name
            for name, exponent in zip(DIMENSION_NAMES, self.dims)
            if exponent != 0
        ]
        body = " * ".join(parts) if parts else "dimensionless"
        if self.factor == 1.0:
            return body
        return f"{self.factor:g} * {body}"

    @staticmethod
    def dimensionless() -> "CanonicalUnit":
        return CanonicalUnit(1.0, tuple([0] * len(DIMENSION_NAMES)))


@dataclass(frozen=True)
class Unit:
    """One ``<unit>`` factor of a unit definition."""

    kind: str
    exponent: int = 1
    scale: int = 0
    multiplier: float = 1.0

    def __post_init__(self):
        object.__setattr__(self, "kind", normalize_kind(self.kind))

    def canonical(self) -> CanonicalUnit:
        """Reduce this factor to canonical form."""
        base_factor, dims = kind_decomposition(self.kind)
        factor = (self.multiplier * 10.0**self.scale * base_factor) ** (
            self.exponent
        )
        return CanonicalUnit(
            factor, tuple(d * self.exponent for d in dims)
        )


@dataclass
class UnitDefinition:
    """A named product of unit factors (``<unitDefinition>``)."""

    id: str
    name: Optional[str] = None
    units: List[Unit] = field(default_factory=list)

    def canonical(self) -> CanonicalUnit:
        """Reduce the whole definition to canonical form."""
        result = CanonicalUnit.dimensionless()
        for unit in self.units:
            result = result * unit.canonical()
        return result

    def same_unit(self, other: "UnitDefinition") -> bool:
        """Whether two definitions denote exactly the same unit."""
        return self.canonical().approx_equal(other.canonical())

    def same_dimensions(self, other: "UnitDefinition") -> bool:
        """Whether two definitions measure the same quantity (possibly
        at different scales, e.g. mmol vs mol)."""
        return self.canonical().same_dimensions(other.canonical())

    def conversion_factor(self, other: "UnitDefinition") -> float:
        """Factor turning values in ``self`` into values in ``other``."""
        return self.canonical().conversion_factor(other.canonical())

    def copy(self) -> "UnitDefinition":
        """Deep-enough copy (units are immutable)."""
        return UnitDefinition(self.id, self.name, list(self.units))
