"""SBML base unit kinds and their SI decomposition.

SBML Level 2 defines a closed list of base unit kinds.  Every kind is
expressed here as a multiplicative factor times a vector of integer
exponents over the eight base dimensions used by the library:

``(metre, kilogram, second, ampere, kelvin, mole, candela, item)``

``item`` (a count of discrete entities — molecules in the paper's
Figure 6) is carried as its own dimension so that *moles* and
*molecules* are interconvertible only through an explicit Avogadro
conversion, exactly the situation the paper's unit-conflict handling
deals with.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import UnknownUnitError

__all__ = [
    "DIMENSION_NAMES",
    "BASE_KINDS",
    "kind_decomposition",
    "is_known_kind",
    "normalize_kind",
]

DIMENSION_NAMES: Tuple[str, ...] = (
    "metre",
    "kilogram",
    "second",
    "ampere",
    "kelvin",
    "mole",
    "candela",
    "item",
)

_ZERO = (0, 0, 0, 0, 0, 0, 0, 0)


def _dims(**exponents: int) -> Tuple[int, ...]:
    vector = [0] * len(DIMENSION_NAMES)
    for name, exponent in exponents.items():
        vector[DIMENSION_NAMES.index(name)] = exponent
    return tuple(vector)


# kind -> (factor to SI-coherent base, dimension vector)
BASE_KINDS: Dict[str, Tuple[float, Tuple[int, ...]]] = {
    "ampere": (1.0, _dims(ampere=1)),
    "becquerel": (1.0, _dims(second=-1)),
    "candela": (1.0, _dims(candela=1)),
    "coulomb": (1.0, _dims(ampere=1, second=1)),
    "dimensionless": (1.0, _ZERO),
    "farad": (1.0, _dims(kilogram=-1, metre=-2, second=4, ampere=2)),
    "gram": (1e-3, _dims(kilogram=1)),
    "gray": (1.0, _dims(metre=2, second=-2)),
    "henry": (1.0, _dims(kilogram=1, metre=2, second=-2, ampere=-2)),
    "hertz": (1.0, _dims(second=-1)),
    "item": (1.0, _dims(item=1)),
    "joule": (1.0, _dims(kilogram=1, metre=2, second=-2)),
    "katal": (1.0, _dims(mole=1, second=-1)),
    "kelvin": (1.0, _dims(kelvin=1)),
    "kilogram": (1.0, _dims(kilogram=1)),
    "litre": (1e-3, _dims(metre=3)),
    "lumen": (1.0, _dims(candela=1)),
    "lux": (1.0, _dims(candela=1, metre=-2)),
    "metre": (1.0, _dims(metre=1)),
    "mole": (1.0, _dims(mole=1)),
    "newton": (1.0, _dims(kilogram=1, metre=1, second=-2)),
    "ohm": (1.0, _dims(kilogram=1, metre=2, second=-3, ampere=-2)),
    "pascal": (1.0, _dims(kilogram=1, metre=-1, second=-2)),
    "radian": (1.0, _ZERO),
    "second": (1.0, _dims(second=1)),
    "siemens": (1.0, _dims(kilogram=-1, metre=-2, second=3, ampere=2)),
    "sievert": (1.0, _dims(metre=2, second=-2)),
    "steradian": (1.0, _ZERO),
    "tesla": (1.0, _dims(kilogram=1, second=-2, ampere=-1)),
    "volt": (1.0, _dims(kilogram=1, metre=2, second=-3, ampere=-1)),
    "watt": (1.0, _dims(kilogram=1, metre=2, second=-3)),
    "weber": (1.0, _dims(kilogram=1, metre=2, second=-2, ampere=-1)),
}

# US spellings accepted on input, normalised to the SBML kind names.
_SPELLING_ALIASES = {
    "liter": "litre",
    "meter": "metre",
}


def normalize_kind(kind: str) -> str:
    """Return the canonical SBML spelling of a base unit kind."""
    return _SPELLING_ALIASES.get(kind, kind)


def is_known_kind(kind: str) -> bool:
    """Whether ``kind`` names an SBML base unit (either spelling)."""
    return normalize_kind(kind) in BASE_KINDS


def kind_decomposition(kind: str) -> Tuple[float, Tuple[int, ...]]:
    """Return ``(factor, dimension_vector)`` for a base unit kind."""
    normalized = normalize_kind(kind)
    try:
        return BASE_KINDS[normalized]
    except KeyError:
        raise UnknownUnitError(f"unknown unit kind {kind!r}") from None
