"""Whole-model deterministic ↔ stochastic conversion (Figure 6 at
model scale).

The paper's Figure 6 gives the per-reaction rate-constant conversions;
this module applies them to an *entire model*:

* :func:`to_stochastic` — concentrations become molecule counts
  (``x = nA·[X]·V``) and each mass-action rate constant is converted
  by its reaction order (zeroth: ``c = nA·k·V``; first: ``c = k``;
  second: ``c = k/(nA·V)``).
* :func:`to_deterministic` — the inverse.

Conversions rewrite the *global parameter values* or *local kinetic
parameters* referenced by mass-action laws; reactions whose laws are
not mass action are reported back so the caller can decide (the same
warn-and-continue philosophy the composition engine uses).

This is what makes a deterministic model mergeable with a stochastic
one: convert, then compose — and the engine's Figure 6 reconciliation
will recognise the remaining shared reactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import UnitError
from repro.mathml.ast import Apply, Identifier, MathNode, Number
from repro.sbml.components import Reaction
from repro.sbml.model import Model
from repro.units.convert import (
    AVOGADRO,
    concentration_to_molecules,
    deterministic_to_stochastic,
    molecules_to_concentration,
    stochastic_to_deterministic,
)

__all__ = ["ConversionReport", "to_stochastic", "to_deterministic"]


@dataclass
class ConversionReport:
    """What a whole-model conversion did (and could not do)."""

    species_converted: List[str] = field(default_factory=list)
    constants_converted: List[Tuple[str, float, float]] = field(
        default_factory=list
    )
    skipped_reactions: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def warn(self, message: str) -> None:
        self.warnings.append(message)


def _mass_action_constant_factor(
    law_math: MathNode, reaction: Reaction
) -> Optional[Tuple[str, bool]]:
    """If ``law_math`` is ``k · Π reactants`` for this reaction's
    reactant multiset, return ``(constant_name, True)``; the bool
    distinguishes a bare Identifier constant from anything else."""
    expected: List[str] = []
    for reference in reaction.reactants:
        if not float(reference.stoichiometry).is_integer():
            return None
        expected.extend([reference.species] * int(reference.stoichiometry))
    factors = (
        list(law_math.args)
        if isinstance(law_math, Apply) and law_math.op == "times"
        else [law_math]
    )
    seen: List[str] = []
    constants: List[str] = []
    for factor in factors:
        if isinstance(factor, Identifier) and factor.name in set(expected):
            seen.append(factor.name)
        elif (
            isinstance(factor, Apply)
            and factor.op == "power"
            and isinstance(factor.args[0], Identifier)
            and factor.args[0].name in set(expected)
            and isinstance(factor.args[1], Number)
            and float(factor.args[1].value).is_integer()
        ):
            seen.extend([factor.args[0].name] * int(factor.args[1].value))
        elif isinstance(factor, Identifier):
            constants.append(factor.name)
        else:
            return None
    if sorted(seen) != sorted(expected) or len(constants) != 1:
        return None
    return constants[0], True


def _reaction_volume(model: Model, reaction: Reaction, default: float) -> float:
    for reference in reaction.reactants + reaction.products:
        species = model.get_species(reference.species)
        if species is not None and species.compartment:
            compartment = model.get_compartment(species.compartment)
            if compartment is not None and compartment.size is not None:
                return compartment.size
    if model.compartments and model.compartments[0].size is not None:
        return model.compartments[0].size
    return default


def _convert_model(
    model: Model,
    to_counts: bool,
    avogadro: float,
    default_volume: float,
) -> Tuple[Model, ConversionReport]:
    result = model.copy()
    report = ConversionReport()

    # --- species initial values ---------------------------------------
    for species in result.species:
        if species.id is None:
            continue
        compartment = result.get_compartment(species.compartment or "")
        volume = (
            compartment.size
            if compartment is not None and compartment.size is not None
            else default_volume
        )
        if to_counts and species.initial_concentration is not None:
            species.initial_amount = concentration_to_molecules(
                species.initial_concentration, volume, avogadro
            )
            species.initial_concentration = None
            species.has_only_substance_units = True
            species.substance_units = "item"
            report.species_converted.append(species.id)
        elif not to_counts and species.initial_amount is not None:
            species.initial_concentration = molecules_to_concentration(
                species.initial_amount, volume, avogadro
            )
            species.initial_amount = None
            species.has_only_substance_units = False
            if species.substance_units == "item":
                species.substance_units = None
            report.species_converted.append(species.id)

    # --- mass-action rate constants -------------------------------------
    converted_globals: Dict[str, float] = {}
    for reaction in result.reactions:
        law = reaction.kinetic_law
        if law is None or law.math is None:
            report.skipped_reactions.append(reaction.id or "<anonymous>")
            continue
        extraction = _mass_action_constant_factor(law.math, reaction)
        if extraction is None:
            report.skipped_reactions.append(reaction.id or "<anonymous>")
            report.warn(
                f"reaction {reaction.id!r}: kinetic law is not plain "
                "mass action; left unchanged"
            )
            continue
        constant_name, _ = extraction
        try:
            order = int(
                sum(r.stoichiometry for r in reaction.reactants)
            )
        except (TypeError, ValueError):
            report.skipped_reactions.append(reaction.id or "<anonymous>")
            continue
        if order not in (0, 1, 2):
            report.skipped_reactions.append(reaction.id or "<anonymous>")
            report.warn(
                f"reaction {reaction.id!r}: order {order} outside the "
                "Figure 6 table; left unchanged"
            )
            continue
        volume = _reaction_volume(result, reaction, default_volume)
        convert = (
            deterministic_to_stochastic
            if to_counts
            else stochastic_to_deterministic
        )

        local = next(
            (p for p in law.parameters if p.id == constant_name), None
        )
        if local is not None and local.value is not None:
            new_value = convert(local.value, order, volume, avogadro)
            report.constants_converted.append(
                (f"{reaction.id}/{constant_name}", local.value, new_value)
            )
            local.value = new_value
            continue
        parameter = result.get_parameter(constant_name)
        if parameter is None or parameter.value is None:
            report.skipped_reactions.append(reaction.id or "<anonymous>")
            report.warn(
                f"reaction {reaction.id!r}: constant {constant_name!r} "
                "has no numeric value; left unchanged"
            )
            continue
        if constant_name in converted_globals:
            # Shared constant across reactions: orders must agree,
            # otherwise one numeric value cannot serve both.
            if converted_globals[constant_name] != order:
                raise UnitError(
                    f"global constant {constant_name!r} is used by "
                    f"reactions of different orders; cannot convert"
                )
            continue
        new_value = convert(parameter.value, order, volume, avogadro)
        report.constants_converted.append(
            (constant_name, parameter.value, new_value)
        )
        parameter.value = new_value
        converted_globals[constant_name] = order

    return result, report


def to_stochastic(
    model: Model,
    avogadro: float = AVOGADRO,
    default_volume: float = 1.0,
) -> Tuple[Model, ConversionReport]:
    """Convert a concentration-based model to molecule counts."""
    return _convert_model(
        model, to_counts=True, avogadro=avogadro, default_volume=default_volume
    )


def to_deterministic(
    model: Model,
    avogadro: float = AVOGADRO,
    default_volume: float = 1.0,
) -> Tuple[Model, ConversionReport]:
    """Convert a molecule-count model to concentrations."""
    return _convert_model(
        model, to_counts=False, avogadro=avogadro, default_volume=default_volume
    )
