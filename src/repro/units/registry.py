"""Registry of unit definitions, with the SBML Level 2 built-ins.

SBML models may reference predefined unit ids (``substance``,
``volume``, ``area``, ``length``, ``time``) and a handful of
convenience ids without declaring them; the registry resolves both
those and model-local ``<unitDefinition>`` entries, providing the
"list of known units" the paper checks unit definitions against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import UnknownUnitError
from repro.units.definitions import CanonicalUnit, Unit, UnitDefinition
from repro.units.kinds import is_known_kind

__all__ = ["UnitRegistry", "builtin_definitions"]


def builtin_definitions() -> Dict[str, UnitDefinition]:
    """The SBML Level 2 predefined unit definitions."""
    return {
        "substance": UnitDefinition("substance", "substance", [Unit("mole")]),
        "volume": UnitDefinition("volume", "volume", [Unit("litre")]),
        "area": UnitDefinition("area", "area", [Unit("metre", exponent=2)]),
        "length": UnitDefinition("length", "length", [Unit("metre")]),
        "time": UnitDefinition("time", "time", [Unit("second")]),
    }


class UnitRegistry:
    """Resolve unit references (kind names or definition ids).

    A registry is seeded with the SBML built-ins; model unit
    definitions are added on top.  Lookup order follows SBML: a
    model-level definition shadows the built-in of the same id.
    """

    def __init__(self, definitions: Optional[Iterable[UnitDefinition]] = None):
        self._definitions: Dict[str, UnitDefinition] = builtin_definitions()
        for definition in definitions or ():
            self.add(definition)

    def add(self, definition: UnitDefinition) -> None:
        """Register (or shadow) a unit definition."""
        self._definitions[definition.id] = definition

    def __contains__(self, ref: str) -> bool:
        return ref in self._definitions or is_known_kind(ref)

    def definitions(self) -> Dict[str, UnitDefinition]:
        """A copy of the id → definition table."""
        return dict(self._definitions)

    def resolve(self, ref: str) -> CanonicalUnit:
        """Canonicalize a unit reference.

        ``ref`` may be a unit-definition id or a bare base-unit kind
        (SBML allows e.g. ``units="second"`` directly).
        """
        definition = self._definitions.get(ref)
        if definition is not None:
            return definition.canonical()
        if is_known_kind(ref):
            return Unit(ref).canonical()
        raise UnknownUnitError(f"unknown unit reference {ref!r}")

    def same_unit(self, first: str, second: str) -> bool:
        """Whether two unit references denote the same unit."""
        return self.resolve(first).approx_equal(self.resolve(second))

    def conversion_factor(self, source: str, target: str) -> float:
        """Factor turning values in ``source`` into values in
        ``target`` (raises on incompatible dimensions)."""
        return self.resolve(source).conversion_factor(self.resolve(target))
