"""Unit tests for stoichiometric analysis."""

import numpy as np
import pytest

from repro import ModelBuilder, compose_all
from repro.analysis import (
    conservation_laws,
    conserved_totals,
    dead_species,
    stoichiometric_matrix,
)
from repro.sim import simulate


def conversion_model():
    """A <-> B: A + B conserved."""
    return (
        ModelBuilder("conv")
        .compartment("cell", size=1.0)
        .species("A", 7.0)
        .species("B", 3.0)
        .parameter("k1", 1.0)
        .parameter("k2", 0.5)
        .reversible_mass_action("r", ["A"], ["B"], "k1", "k2")
        .build()
    )


def test_matrix_shape_and_entries():
    matrix, species_ids, reaction_ids = stoichiometric_matrix(
        conversion_model()
    )
    assert matrix.shape == (2, 1)
    assert species_ids == ["A", "B"]
    assert reaction_ids == ["r"]
    assert matrix[0, 0] == -1.0  # A consumed
    assert matrix[1, 0] == 1.0  # B produced


def test_matrix_with_stoichiometry():
    model = (
        ModelBuilder("m").compartment("c")
        .species("A").species("B")
        .parameter("k", 1.0)
        .mass_action("r", [("A", 2)], ["B"], "k")
        .build()
    )
    matrix, _, _ = stoichiometric_matrix(model)
    assert matrix[0, 0] == -2.0


def test_conversion_conserves_sum():
    laws = conservation_laws(conversion_model())
    assert {"A": 1.0, "B": 1.0} in laws


def test_atp_adp_conservation():
    from repro.analysis import is_conserved

    model = (
        ModelBuilder("atp").compartment("c")
        .species("atp", 3.0).species("adp", 1.0)
        .species("glc", 5.0).species("g6p", 0.0)
        .parameter("k", 1.0)
        .reaction(
            "hk", ["glc", "atp"], ["g6p", "adp"], formula="k*glc*atp"
        )
        .build()
    )
    laws = conservation_laws(model)
    assert {"atp": 1.0, "adp": 1.0} in laws
    # glc + g6p is conserved too; it lies in the span of the basis
    # even when it is not itself a basis vector.
    assert is_conserved(model, {"glc": 1.0, "g6p": 1.0})
    assert not is_conserved(model, {"glc": 1.0, "adp": -2.0})
    assert len(laws) == 3  # 4 species, rank-1 N


def test_open_system_has_no_total_law():
    model = (
        ModelBuilder("open").compartment("c")
        .species("X", 1.0)
        .parameter("k", 1.0)
        .reaction("in", [], ["X"], formula="k")
        .mass_action("out", ["X"], [], "k")
        .build()
    )
    laws = conservation_laws(model)
    assert laws == []  # X is created and destroyed: nothing conserved


def test_untouched_species_trivially_conserved():
    model = (
        ModelBuilder("m").compartment("c")
        .species("inert", 1.0)
        .species("A", 1.0).species("B", 0.0)
        .parameter("k", 1.0)
        .mass_action("r", ["A"], ["B"], "k")
        .build()
    )
    laws = conservation_laws(model)
    assert {"inert": 1.0} in laws


def test_no_reactions_every_species_conserved():
    model = (
        ModelBuilder("m").compartment("c")
        .species("A", 1.0).species("B", 2.0)
        .build()
    )
    laws = conservation_laws(model)
    assert {"A": 1.0} in laws and {"B": 1.0} in laws


def test_conserved_totals_from_initials():
    totals = conserved_totals(conversion_model())
    law_totals = {
        tuple(sorted(law)): total for law, total in totals
    }
    assert law_totals[("A", "B")] == pytest.approx(10.0)


def test_simulation_respects_discovered_laws():
    model = conversion_model()
    laws = conservation_laws(model)
    trace = simulate(model, 5.0, 200)
    for law in laws:
        series = sum(
            coefficient * trace.column(species_id)
            for species_id, coefficient in law.items()
        )
        assert np.allclose(series, series[0], rtol=1e-9)


def test_composition_preserves_conservation_laws():
    # Figure 1: self-composition must not create or destroy laws.
    model = conversion_model()
    merged = compose_all([model, model.copy()]).model
    assert conservation_laws(merged) == conservation_laws(model)


def test_composition_extends_laws_on_disjoint_union():
    first = conversion_model()
    second = (
        ModelBuilder("other").compartment("cell", size=1.0)
        .species("X", 1.0).species("Y", 0.0)
        .parameter("k", 1.0)
        .reversible_mass_action("r2", ["X"], ["Y"], "k", "k")
        .build()
    )
    merged = compose_all([first, second]).model
    laws = conservation_laws(merged)
    assert {"A": 1.0, "B": 1.0} in laws
    assert {"X": 1.0, "Y": 1.0} in laws


def test_dead_species():
    model = (
        ModelBuilder("m").compartment("c")
        .species("used", 1.0).species("lonely", 1.0)
        .parameter("k", 1.0)
        .mass_action("r", ["used"], [], "k")
        .build()
    )
    assert dead_species(model) == ["lonely"]
