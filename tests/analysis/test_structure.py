"""Unit tests for network-structure analysis."""

import pytest

from repro import ModelBuilder, compose_all
from repro.analysis import (
    degree_table,
    hub_species,
    merge_impact,
    paths_between,
    reachable_species,
)
from repro.corpus import drug_inhibition, glycolysis_upper


def chain_model():
    """A -> B -> C -> D."""
    builder = (
        ModelBuilder("chain").compartment("c").parameter("k", 1.0)
    )
    for sid in "ABCD":
        builder.species(sid, 1.0)
    builder.mass_action("r1", ["A"], ["B"], "k")
    builder.mass_action("r2", ["B"], ["C"], "k")
    builder.mass_action("r3", ["C"], ["D"], "k")
    return builder.build()


class TestDegreesAndHubs:
    def test_degree_table(self):
        table = degree_table(chain_model())
        assert table["A"] == (0, 1)
        assert table["B"] == (1, 1)
        assert table["D"] == (1, 0)

    def test_hub_species_ranked(self):
        hubs = hub_species(chain_model(), top=2)
        # B and C have total degree 2; ties break alphabetically.
        assert hubs == [("B", 2), ("C", 2)]

    def test_hub_in_glycolysis_is_currency(self):
        hubs = dict(hub_species(glycolysis_upper(), top=8))
        assert "atp" in hubs  # ATP touches several reactions


class TestReachability:
    def test_reachable_downstream(self):
        assert reachable_species(chain_model(), "A") == {"B", "C", "D"}
        assert reachable_species(chain_model(), "C") == {"D"}
        assert reachable_species(chain_model(), "D") == set()

    def test_unknown_source(self):
        assert reachable_species(chain_model(), "nope") == set()

    def test_paths_between(self):
        paths = paths_between(chain_model(), "A", "D")
        assert paths == [["A", "B", "C", "D"]]

    def test_paths_missing_endpoint(self):
        assert paths_between(chain_model(), "A", "nope") == []

    def test_paths_bounded(self):
        # Diamond: two paths A->D.
        model = (
            ModelBuilder("diamond").compartment("c").parameter("k", 1.0)
            .species("A").species("B").species("C").species("D")
            .mass_action("r1", ["A"], ["B"], "k")
            .mass_action("r2", ["A"], ["C"], "k")
            .mass_action("r3", ["B"], ["D"], "k")
            .mass_action("r4", ["C"], ["D"], "k")
            .build()
        )
        assert len(paths_between(model, "A", "D")) == 2
        assert len(paths_between(model, "A", "D", max_paths=1)) == 1


class TestMergeImpact:
    def test_self_merge_impact(self):
        model = chain_model()
        merged = compose_all([model, model.copy()]).model
        impact = merge_impact(model, model.copy(), merged)
        assert impact.nodes_shared == 4
        assert impact.edges_shared == 3
        assert impact.new_connections == []

    def test_drug_overlay_creates_crossings(self):
        pathway = glycolysis_upper()
        overlay = drug_inhibition()
        merged = compose_all([pathway, overlay]).model
        impact = merge_impact(pathway, overlay, merged)
        # The drug (overlay-only) now connects to pathway species
        # through the shared glucose pool.
        assert impact.nodes_shared >= 1
        assert "united" in impact.summary()

    def test_new_connection_detection(self):
        first = (
            ModelBuilder("f").compartment("c").parameter("k", 1.0)
            .species("A").species("S").mass_action("r1", ["A"], ["S"], "k")
            .build()
        )
        second = (
            ModelBuilder("s").compartment("c").parameter("k", 1.0)
            .species("S").species("Z").mass_action("r2", ["S"], ["Z"], "k")
            .build()
        )
        merged = compose_all([first, second]).model
        impact = merge_impact(first, second, merged)
        # The merged network now flows A -> S -> Z, but A->Z direct
        # edges don't exist; crossings are edges touching both sides.
        reachable = reachable_species(merged, "A")
        assert "Z" in reachable