"""Unit tests for the synthetic annotation database."""

import pytest

from repro.baselines import (
    DEFAULT_ENTRY_COUNT,
    AnnotationDatabase,
    generate_database,
)


@pytest.fixture(scope="module")
def small_db(tmp_path_factory):
    path = tmp_path_factory.mktemp("db") / "db.tsv"
    generate_database(path, entry_count=2000)
    return AnnotationDatabase.load(path)


def test_default_entry_count_matches_paper():
    assert DEFAULT_ENTRY_COUNT == 54_929


def test_generate_exact_entry_count(tmp_path):
    path = tmp_path / "db.tsv"
    generate_database(path, entry_count=1234)
    with open(path) as handle:
        assert sum(1 for _ in handle) == 1234


def test_generate_idempotent(tmp_path):
    path = tmp_path / "db.tsv"
    generate_database(path, entry_count=500)
    first = path.read_text()
    generate_database(path, entry_count=500)
    assert path.read_text() == first


def test_regenerates_on_size_mismatch(tmp_path):
    path = tmp_path / "db.tsv"
    generate_database(path, entry_count=100)
    generate_database(path, entry_count=200)
    with open(path) as handle:
        assert sum(1 for _ in handle) == 200


def test_load_reports_entry_count(small_db):
    assert len(small_db) == 2000


def test_synonym_ring_names_share_uri(small_db):
    atp = small_db.lookup("ATP")
    long_form = small_db.lookup("adenosine triphosphate")
    assert atp is not None
    assert atp == long_form


def test_distinct_entities_distinct_uris(small_db):
    assert small_db.lookup("ATP") != small_db.lookup("ADP")


def test_family_names_resolvable(small_db):
    assert small_db.lookup("species_5") is not None
    assert small_db.lookup("protein_7") is not None
    # Underscore-less variant maps to the same entry.
    assert small_db.lookup("species_5") == small_db.lookup("species5")


def test_unknown_name_returns_none(small_db):
    assert small_db.lookup("unobtainium_kinase") is None
    assert small_db.lookup(None) is None
    assert small_db.lookup("") is None


def test_lookup_is_normalised(small_db):
    assert small_db.lookup("a t p") == small_db.lookup("ATP")


def test_uris_use_miriam_sources(tmp_path):
    path = tmp_path / "db.tsv"
    generate_database(path, entry_count=300)
    text = path.read_text()
    assert "urn:miriam:kegg.compound:" in text
    assert "urn:miriam:chebi:" in text
    assert "urn:miriam:obo.go:" in text
