"""Unit tests for the semanticSBML-style baseline merger."""

import pytest

from repro import ModelBuilder, compose_all
from repro.baselines import SemanticSBMLMerge, generate_database
from repro.sbml import validate_model


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    # A smaller database keeps unit tests fast; benchmarks use the
    # full 54,929 entries.
    path = tmp_path_factory.mktemp("db") / "db.tsv"
    generate_database(path, entry_count=5000)
    return SemanticSBMLMerge(database_path=path)


def annotated_pair():
    a = (
        ModelBuilder("a")
        .compartment("cell", size=1.0)
        .species("atp", 1.0, name="ATP")
        .species("adp", 0.5, name="ADP")
        .parameter("k1", 0.5)
        .mass_action("r1", ["atp"], ["adp"], "k1")
        .build()
    )
    b = (
        ModelBuilder("b")
        .compartment("cell", size=1.0)
        .species("atp", 1.0, name="ATP")
        .species("amp", 0.1, name="AMP")
        .parameter("k2", 0.3)
        .mass_action("r2", ["atp"], ["amp"], "k2")
        .build()
    )
    return a, b


class TestBaselineMerge:
    def test_identical_models_deduplicated(self, engine):
        a, _ = annotated_pair()
        merged, report = engine.merge(a, a.copy())
        assert len(merged.species) == 2
        assert len(merged.reactions) == 1
        assert report.duplicates_removed > 0

    def test_shared_species_united_via_annotation(self, engine):
        a, b = annotated_pair()
        merged, _ = engine.merge(a, b)
        names = sorted(s.name for s in merged.species)
        assert names == ["ADP", "AMP", "ATP"]

    def test_result_is_valid_sbml(self, engine):
        a, b = annotated_pair()
        merged, _ = engine.merge(a, b)
        errors = [
            issue
            for issue in validate_model(merged)
            if issue.severity == "error"
        ]
        assert errors == []

    def test_disjoint_models_union(self, engine):
        a = (
            ModelBuilder("a")
            .compartment("c1", size=1.0)
            .species("x1", 1.0, name="species_1")
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("c2", size=1.0)
            .species("x2", 1.0, name="species_2")
            .build()
        )
        merged, _ = engine.merge(a, b)
        assert len(merged.species) == 2

    def test_timings_cover_all_passes(self, engine):
        a, b = annotated_pair()
        _, report = engine.merge(a, b)
        assert set(report.timings) == {
            "db_load",
            "annotate",
            "validate",
            "combine",
            "dedup",
        }
        assert report.total_time > 0

    def test_db_load_dominates(self, engine):
        # The paper's explanation for the Fig 9 gap.
        a, b = annotated_pair()
        _, report = engine.merge(a, b)
        other = report.total_time - report.timings["db_load"]
        assert report.timings["db_load"] > other

    def test_initial_assignment_equality_needs_user(self, engine):
        # semanticSBML "cannot determine if the maths of initial
        # assignments are equal" — math differs syntactically, values
        # agree; the baseline must punt to the user.
        a = (
            ModelBuilder("a")
            .compartment("cell", size=1.0)
            .species("atp", 1.0, name="ATP")
            .initial_assignment("atp", "2 * 3")
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=1.0)
            .species("atp", 1.0, name="ATP")
            .initial_assignment("atp", "6")
            .build()
        )
        _, report = engine.merge(a, b)
        assert report.user_interactions >= 1
        # SBMLCompose decides it automatically.
        compose_report = compose_all([a, b]).report
        assert not compose_report.has_conflicts()

    def test_commutative_math_not_matched(self, engine):
        # No Figure 7 patterns in the baseline: reordered operands are
        # "different" reactions and both survive.
        a = (
            ModelBuilder("a")
            .compartment("cell", size=1.0)
            .species("s", 1.0, name="species_3")
            .species("t", 0.0, name="species_4")
            .parameter("k", 1.0)
            .reaction("r1", ["s", "t"], [], formula="k*s*t")
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=1.0)
            .species("s", 1.0, name="species_3")
            .species("t", 0.0, name="species_4")
            .parameter("k", 1.0)
            .reaction("r2", ["s", "t"], [], formula="t*k*s")
            .build()
        )
        merged, _ = engine.merge(a, b)
        assert len(merged.reactions) == 2
        merged_compose = compose_all([a, b]).model
        assert len(merged_compose.reactions) == 1

    def test_unannotated_fallback_counts_interaction(self, engine):
        a = (
            ModelBuilder("a")
            .compartment("cell", size=1.0)
            .species("zz_unknown_1", 1.0)
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=1.0)
            .species("zz_unknown_1", 1.0)
            .build()
        )
        _, report = engine.merge(a, b)
        assert report.user_interactions >= 1

    def test_conflicting_species_values_flagged(self, engine):
        a = (
            ModelBuilder("a")
            .compartment("cell", size=1.0)
            .species("atp", 1.0, name="ATP")
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=1.0)
            .species("atp", 9.0, name="ATP")
            .build()
        )
        merged, report = engine.merge(a, b)
        assert report.conflicts >= 1
        assert merged.get_species("atp").initial_concentration == 1.0

    def test_reload_database_every_run(self, engine):
        a, b = annotated_pair()
        _, first_report = engine.merge(a, b)
        _, second_report = engine.merge(a, b)
        # Reload mode: both runs pay the load.
        assert first_report.timings["db_load"] > 0
        assert second_report.timings["db_load"] > 0

    def test_cached_mode_for_ablation(self, tmp_path):
        path = tmp_path / "db.tsv"
        generate_database(path, entry_count=5000)
        engine = SemanticSBMLMerge(database_path=path, reload_database=False)
        a, b = annotated_pair()
        engine.merge(a, b)  # warm the cache
        _, report = engine.merge(a, b)
        assert report.timings["db_load"] < 0.005

    def test_inputs_not_mutated(self, engine):
        a, b = annotated_pair()
        before = a.component_count(), b.component_count()
        engine.merge(a, b)
        assert (a.component_count(), b.component_count()) == before
