"""The content-addressed artifact store + the session spill tier."""

import pickle

import pytest

from repro import ComposeSession, ModelBuilder, write_sbml
from repro.core.artifact_store import (
    ArtifactStore,
    ModelArtifacts,
    compute_artifacts,
    corpus_fingerprint,
    model_digest,
)


def _model(model_id="m", species=("A", "B"), value=0.5):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder = builder.species(name, 1.0)
    builder = builder.parameter("k", value)
    builder = builder.mass_action(
        f"r_{model_id}", [species[0]], [species[-1]], "k"
    )
    return builder.build()


class TestModelDigest:
    def test_copy_shares_digest(self):
        model = _model()
        assert model_digest(model) == model_digest(model.copy())

    def test_content_changes_digest(self):
        assert model_digest(_model(value=0.5)) != model_digest(
            _model(value=0.7)
        )

    def test_corpus_fingerprint_orders_and_params(self):
        a, b = _model("a"), _model("b")
        assert corpus_fingerprint([a, b]) != corpus_fingerprint([b, a])
        assert corpus_fingerprint([a, b]) != corpus_fingerprint(
            [a, b], extra=("shards", 4)
        )
        assert corpus_fingerprint([a, b]) == corpus_fingerprint(
            [a.copy(), b.copy()]
        )


class TestComputeArtifacts:
    def test_matches_engine_inputs(self):
        model = _model()
        artifacts = compute_artifacts(model)
        assert set(model.global_ids()) <= artifacts.used_ids
        assert artifacts.initial["A"] == pytest.approx(1.0)
        assert artifacts.registry is not None


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        assert store.get(digest) is None
        store.put(digest, compute_artifacts(model))
        assert digest in store
        rehydrated = store.get(digest)
        assert isinstance(rehydrated, ModelArtifacts)
        assert rehydrated.used_ids == compute_artifacts(model).used_ids
        assert rehydrated.initial == compute_artifacts(model).initial

    def test_get_or_compute_spills_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        assert len(store) == 0
        first = store.get_or_compute(model)
        assert len(store) == 1
        second = store.get_or_compute(model.copy())  # same content digest
        assert len(store) == 1
        assert first.used_ids == second.used_ids

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        path = store.put(digest, compute_artifacts(model))
        path.write_bytes(b"torn write")
        assert store.get(digest) is None
        # get_or_compute self-heals the entry.
        assert store.get_or_compute(model) is not None
        assert store.get(digest) is not None

    def test_format_mismatch_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = model_digest(_model())
        path = store.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"format": -1, "artifacts": None})
        )
        assert store.get(digest) is None

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_compute(_model("a"))
        store.get_or_compute(_model("b", species=("B", "C")))
        assert store.clear() == 2
        assert len(store) == 0


class TestCrossFormatRehydration:
    """Store format 3 added the per-model index rows as a pure
    addition: format-2 entries (no ``indexes`` field at all) must
    rehydrate as valid hits with ``indexes=None`` — computed lazily by
    consumers — never as corrupt-entry=miss.  The regression: the old
    reader treated *any* non-current format as a miss, which would
    have silently recomputed (and rewritten) every entry of an
    existing store on upgrade."""

    def _write_format2(self, store, model):
        """An entry exactly as a format-2 writer laid it out: the
        dataclass pickled without the ``indexes`` attribute."""
        artifacts = compute_artifacts(model, with_indexes=False)
        del artifacts.indexes  # the field did not exist in format 2
        digest = model_digest(model)
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"format": 2, "artifacts": artifacts}))
        return digest

    def test_format2_entry_rehydrates_with_lazy_indexes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = self._write_format2(store, model)
        rehydrated = store.get(digest)
        assert rehydrated is not None, "format-2 entry must be a hit"
        assert rehydrated.indexes is None
        assert rehydrated.used_ids == compute_artifacts(model).used_ids
        assert rehydrated.patterns == compute_artifacts(model).patterns

    def test_format2_hit_is_not_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = self._write_format2(store, model)
        payload_before = store.path_for(digest).read_bytes()
        artifacts = store.get_or_compute(model, digest)
        assert artifacts is not None and artifacts.indexes is None
        # A hit: the entry was served, not recomputed/overwritten.
        assert store.path_for(digest).read_bytes() == payload_before

    def test_format3_round_trip_carries_index_rows(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        computed = compute_artifacts(model)
        assert computed.indexes is not None
        store.put(digest, computed)
        rehydrated = store.get(digest)
        assert rehydrated.indexes is not None
        assert rehydrated.indexes.rows == computed.indexes.rows
        assert rehydrated.indexes.options_key == computed.indexes.options_key

    def test_unknown_future_format_stays_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = model_digest(_model())
        path = store.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"format": 99, "artifacts": None}))
        assert store.get(digest) is None


class TestSessionSpillTier:
    def test_compose_identical_through_store(self, tmp_path):
        models = [_model("a"), _model("b", species=("B", "C"))]
        plain = ComposeSession().compose_all(models)
        stored = ComposeSession(
            artifact_store=ArtifactStore(tmp_path)
        ).compose_all(models)
        assert write_sbml(plain.model) == write_sbml(stored.model)
        assert plain.report.mappings == stored.report.mappings

    def test_spill_then_rehydrate(self, tmp_path):
        models = [_model("a"), _model("b", species=("B", "C"))]
        session = ComposeSession(artifact_store=str(tmp_path))
        before = session.compose_all(models)
        assert session.spill() > 0
        # Memo released: pinned inputs are gone...
        assert session._pinned == {}
        # ...but composing again rehydrates from disk, same result.
        after = session.compose_all(models)
        assert write_sbml(before.model) == write_sbml(after.model)

    def test_second_session_reuses_spilled_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        models = [_model("a"), _model("b", species=("B", "C"))]
        ComposeSession(artifact_store=store).compose_all(models)
        entries = len(store)
        assert entries > 0
        fresh = ComposeSession(artifact_store=store)
        result = fresh.compose_all([model.copy() for model in models])
        assert len(store) == entries  # copies hit, nothing recomputed
        assert sorted(result.model.global_ids()) == sorted(
            ComposeSession().compose_all(models).model.global_ids()
        )

    def test_spill_without_store_raises(self):
        with pytest.raises(ValueError):
            ComposeSession().spill()

    def test_invalidate_clears_digest_memo(self, tmp_path):
        session = ComposeSession(artifact_store=str(tmp_path))
        models = [_model("a"), _model("b", species=("B", "C"))]
        session.compose_all(models)
        session.invalidate()
        assert session._digests == {}
        assert session._pinned == {}
