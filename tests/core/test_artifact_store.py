"""The content-addressed artifact store + the session spill tier."""

import hashlib
import pickle

import pytest

from repro import ComposeSession, ModelBuilder, read_sbml, write_sbml
from repro.core.artifact_store import (
    ArtifactStore,
    CorpusManifest,
    ModelArtifacts,
    compute_artifacts,
    corpus_fingerprint,
    model_digest,
)


def _model(model_id="m", species=("A", "B"), value=0.5):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder = builder.species(name, 1.0)
    builder = builder.parameter("k", value)
    builder = builder.mass_action(
        f"r_{model_id}", [species[0]], [species[-1]], "k"
    )
    return builder.build()


class TestModelDigest:
    def test_copy_shares_digest(self):
        model = _model()
        assert model_digest(model) == model_digest(model.copy())

    def test_content_changes_digest(self):
        assert model_digest(_model(value=0.5)) != model_digest(
            _model(value=0.7)
        )

    def test_corpus_fingerprint_orders_and_params(self):
        a, b = _model("a"), _model("b")
        assert corpus_fingerprint([a, b]) != corpus_fingerprint([b, a])
        assert corpus_fingerprint([a, b]) != corpus_fingerprint(
            [a, b], extra=("shards", 4)
        )
        assert corpus_fingerprint([a, b]) == corpus_fingerprint(
            [a.copy(), b.copy()]
        )


class TestComputeArtifacts:
    def test_matches_engine_inputs(self):
        model = _model()
        artifacts = compute_artifacts(model)
        assert set(model.global_ids()) <= artifacts.used_ids
        assert artifacts.initial["A"] == pytest.approx(1.0)
        assert artifacts.registry is not None


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        assert store.get(digest) is None
        store.put(digest, compute_artifacts(model))
        assert digest in store
        rehydrated = store.get(digest)
        assert isinstance(rehydrated, ModelArtifacts)
        assert rehydrated.used_ids == compute_artifacts(model).used_ids
        assert rehydrated.initial == compute_artifacts(model).initial

    def test_get_or_compute_spills_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        assert len(store) == 0
        first = store.get_or_compute(model)
        assert len(store) == 1
        second = store.get_or_compute(model.copy())  # same content digest
        assert len(store) == 1
        assert first.used_ids == second.used_ids

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        path = store.put(digest, compute_artifacts(model))
        path.write_bytes(b"torn write")
        assert store.get(digest) is None
        # get_or_compute self-heals the entry.
        assert store.get_or_compute(model) is not None
        assert store.get(digest) is not None

    def test_format_mismatch_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = model_digest(_model())
        path = store.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"format": -1, "artifacts": None})
        )
        assert store.get(digest) is None

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_compute(_model("a"))
        store.get_or_compute(_model("b", species=("B", "C")))
        assert store.clear() == 2
        assert len(store) == 0


class TestCrossFormatRehydration:
    """Store format 3 added the per-model index rows as a pure
    addition: format-2 entries (no ``indexes`` field at all) must
    rehydrate as valid hits with ``indexes=None`` — computed lazily by
    consumers — never as corrupt-entry=miss.  The regression: the old
    reader treated *any* non-current format as a miss, which would
    have silently recomputed (and rewritten) every entry of an
    existing store on upgrade."""

    def _write_format2(self, store, model):
        """An entry exactly as a format-2 writer laid it out: the
        dataclass pickled without the ``indexes`` attribute."""
        artifacts = compute_artifacts(model, with_indexes=False)
        del artifacts.indexes  # the field did not exist in format 2
        digest = model_digest(model)
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"format": 2, "artifacts": artifacts}))
        return digest

    def test_format2_entry_rehydrates_with_lazy_indexes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = self._write_format2(store, model)
        rehydrated = store.get(digest)
        assert rehydrated is not None, "format-2 entry must be a hit"
        assert rehydrated.indexes is None
        assert rehydrated.used_ids == compute_artifacts(model).used_ids
        assert rehydrated.patterns == compute_artifacts(model).patterns

    def test_format2_hit_is_not_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = self._write_format2(store, model)
        payload_before = store.path_for(digest).read_bytes()
        artifacts = store.get_or_compute(model, digest)
        assert artifacts is not None and artifacts.indexes is None
        # A hit: the entry was served, not recomputed/overwritten.
        assert store.path_for(digest).read_bytes() == payload_before

    def test_format3_round_trip_carries_index_rows(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        computed = compute_artifacts(model)
        assert computed.indexes is not None
        store.put(digest, computed)
        rehydrated = store.get(digest)
        assert rehydrated.indexes is not None
        assert rehydrated.indexes.rows == computed.indexes.rows
        assert rehydrated.indexes.options_key == computed.indexes.options_key

    def test_unknown_future_format_stays_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = model_digest(_model())
        path = store.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"format": 99, "artifacts": None}))
        assert store.get(digest) is None


class TestFormat4Rehydration:
    """Store format 4 added the model signature and the per-collection
    id sets, again as pure additions: format-2 *and* format-3 entries
    must rehydrate as hits with the new fields ``None`` — consumers
    (the prescreen, the pair engine's seeding) compute them lazily —
    never as misses that would rewrite an existing store on upgrade."""

    def _write_old_format(self, store, model, version):
        artifacts = compute_artifacts(
            model,
            with_indexes=version >= 3,
            with_signature=False,
        )
        del artifacts.signature  # fields absent before format 4
        del artifacts.id_sets
        if version < 3:
            del artifacts.indexes  # absent before format 3
        digest = model_digest(model)
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps({"format": version, "artifacts": artifacts})
        )
        return digest

    @pytest.mark.parametrize("version", [2, 3])
    def test_old_entry_rehydrates_with_lazy_fields(self, tmp_path, version):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = self._write_old_format(store, model, version)
        payload_before = store.path_for(digest).read_bytes()
        rehydrated = store.get(digest)
        assert rehydrated is not None, f"format-{version} entry must hit"
        assert rehydrated.signature is None
        assert rehydrated.id_sets is None
        assert (rehydrated.indexes is None) == (version == 2)
        assert rehydrated.used_ids == compute_artifacts(model).used_ids
        # Served, not recomputed/overwritten.
        store.get_or_compute(model, digest)
        assert store.path_for(digest).read_bytes() == payload_before

    def test_format4_round_trip_carries_signature_and_id_sets(
        self, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        computed = compute_artifacts(model)
        assert computed.signature is not None
        assert computed.id_sets == model.id_set_table()
        store.put(digest, computed)
        rehydrated = store.get(digest)
        assert rehydrated.signature is not None
        assert rehydrated.signature.options_key == (
            computed.signature.options_key
        )
        assert list(rehydrated.signature.key_hashes) == list(
            computed.signature.key_hashes
        )
        assert rehydrated.id_sets == model.id_set_table()


class TestFormat5Rehydration:
    """Store format 5 added the canonical SBML blob — once more a pure
    addition: format-2/3/4 entries must rehydrate as hits with
    ``sbml=None`` (the digest-shipped worker boundary then falls back
    to pickled models), never as misses that would rewrite an existing
    store on upgrade."""

    def _write_old_format(self, store, model, version):
        artifacts = compute_artifacts(
            model,
            with_indexes=version >= 3,
            with_signature=version >= 4,
            with_sbml=False,
        )
        del artifacts.sbml  # the field did not exist before format 5
        if version < 4:
            del artifacts.signature
            del artifacts.id_sets
        if version < 3:
            del artifacts.indexes
        digest = model_digest(model)
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps({"format": version, "artifacts": artifacts})
        )
        return digest

    @pytest.mark.parametrize("version", [2, 3, 4])
    def test_old_entry_rehydrates_without_sbml_blob(self, tmp_path, version):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = self._write_old_format(store, model, version)
        payload_before = store.path_for(digest).read_bytes()
        rehydrated = store.get(digest)
        assert rehydrated is not None, f"format-{version} entry must hit"
        assert rehydrated.sbml is None
        assert rehydrated.used_ids == compute_artifacts(model).used_ids
        # Served, not recomputed/overwritten.
        store.get_or_compute(model, digest)
        assert store.path_for(digest).read_bytes() == payload_before

    def test_format5_round_trip_carries_canonical_sbml(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        computed = compute_artifacts(model)
        assert computed.sbml is not None
        store.put(digest, computed)
        rehydrated = store.get(digest)
        # The blob is the exact text the digest hashes...
        assert (
            hashlib.sha256(rehydrated.sbml.encode("utf-8")).hexdigest()
            == digest
        )
        # ...and re-parsing it reproduces the model, digest-stable.
        reparsed = read_sbml(rehydrated.sbml).model
        assert model_digest(reparsed) == digest


class TestCorpusManifest:
    def _corpus(self):
        return [
            _model("a"),
            _model("b", species=("B", "C")),
            _model("c", species=("C", "D")),
        ]

    def test_build_populates_store_and_orders_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        models = self._corpus()
        labels = ["a", "b", "c"]
        manifest = CorpusManifest.build(models, labels, store)
        assert len(manifest) == 3
        assert manifest.labels == ("a", "b", "c")
        assert manifest.digests == tuple(
            model_digest(model) for model in models
        )
        # Fingerprint agrees byte-for-byte with the model-side one the
        # checkpoint journal computes.
        assert manifest.fingerprint == corpus_fingerprint(models)
        # Every entry is worker-rehydratable: a format-5 blob carrier.
        for model, digest in zip(models, manifest.digests):
            entry = store.get(digest)
            assert entry is not None and entry.sbml is not None
            assert model_digest(read_sbml(entry.sbml).model) == digest

    def test_build_upgrades_blobless_entries_in_place(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        store.put(digest, compute_artifacts(model, with_sbml=False))
        assert store.get(digest).sbml is None
        CorpusManifest.build([model], ["m"], store)
        assert store.get(digest).sbml is not None

    def test_build_does_not_rewrite_complete_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        manifest = CorpusManifest.build([model], ["m"], store)
        payload = store.path_for(manifest.digests[0]).read_bytes()
        CorpusManifest.build([model.copy()], ["m"], store)
        assert store.path_for(manifest.digests[0]).read_bytes() == payload

    def test_build_rejects_mismatched_labels(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            CorpusManifest.build(self._corpus(), ["only-one"], store)

    def test_evict_pinned_on_manifest_keeps_corpus(self, tmp_path):
        """``--store-max-entries`` eviction during an active sweep must
        never drop a corpus entry a digest-shipped worker is about to
        rehydrate: pinning on ``manifest.digests`` exempts them."""
        store = ArtifactStore(tmp_path)
        manifest = CorpusManifest.build(
            self._corpus(), ["a", "b", "c"], store
        )
        stray = _model("stray", species=("X", "Y"))
        store.get_or_compute(stray)
        evicted = store.evict(max_entries=0, pinned=manifest.digests)
        assert evicted == 1
        assert model_digest(stray) not in store
        for digest in manifest.digests:
            assert store.get(digest) is not None


class TestIdSetSeeding:
    """The rehydrated id sets seed the uniqueness memo of disposable
    merge copies, skipping each collection's first O(n) scan."""

    def test_table_matches_organic_memo(self):
        model = _model()
        table = model.id_set_table()
        assert table["species"] == {"A", "B"}
        assert table["parameter"] == {"k"}
        assert table["event"] == frozenset()

    def test_seeded_copy_enforces_uniqueness(self):
        from repro.errors import SBMLError
        from repro.sbml import Parameter

        model = _model()
        copy = model.copy_shallow()
        copy.seed_id_sets(model.id_set_table())
        with pytest.raises(SBMLError):
            copy.add_parameter(Parameter(id="k", value=1.0))
        copy.add_parameter(Parameter(id="k2", value=1.0))
        # And the seeded memo keeps tracking appends.
        with pytest.raises(SBMLError):
            copy.add_parameter(Parameter(id="k2", value=2.0))

    def test_seeding_never_leaks_between_copies(self):
        from repro.sbml import Parameter

        model = _model()
        table = model.id_set_table()
        first = model.copy_shallow()
        first.seed_id_sets(table)
        first.add_parameter(Parameter(id="fresh", value=1.0))
        second = model.copy_shallow()
        second.seed_id_sets(table)
        # The sibling copy's add must not poison this one's memo (or
        # the shared source model's collections).
        second.add_parameter(Parameter(id="fresh", value=2.0))
        assert len(model.parameters) == 1

    def test_stale_seed_is_invalidated_by_rebinding(self):
        from repro.errors import SBMLError
        from repro.sbml import Parameter

        model = _model()
        copy = model.copy_shallow()
        copy.seed_id_sets(model.id_set_table())
        # Rebinding the list (the documented mutation pattern) drops
        # the seeded entry; the next add rescans organically.
        copy.parameters = list(copy.parameters) + [
            Parameter(id="k9", value=3.0)
        ]
        with pytest.raises(SBMLError):
            copy.add_parameter(Parameter(id="k9", value=4.0))


class TestEvictPinning:
    def test_pinned_entries_survive_eviction(self, tmp_path):
        store = ArtifactStore(tmp_path)
        models = [
            _model("a"),
            _model("b", species=("B", "C")),
            _model("c", species=("C", "D")),
        ]
        digests = [model_digest(model) for model in models]
        for model in models:
            store.get_or_compute(model)
        evicted = store.evict(max_entries=0, pinned=digests[:2])
        assert evicted == 1
        assert store.get(digests[0]) is not None
        assert store.get(digests[1]) is not None
        assert store.get(digests[2]) is None

    def test_pinned_do_not_count_against_the_cap(self, tmp_path):
        store = ArtifactStore(tmp_path)
        models = [
            _model("a"),
            _model("b", species=("B", "C")),
            _model("c", species=("C", "D")),
        ]
        for model in models:
            store.get_or_compute(model)
        pinned = [model_digest(models[0]), model_digest(models[1])]
        # Cap 1 with 1 unpinned entry: nothing to evict.
        assert store.evict(max_entries=1, pinned=pinned) == 0
        assert len(store) == 3


class TestSessionSpillTier:
    def test_compose_identical_through_store(self, tmp_path):
        models = [_model("a"), _model("b", species=("B", "C"))]
        plain = ComposeSession().compose_all(models)
        stored = ComposeSession(
            artifact_store=ArtifactStore(tmp_path)
        ).compose_all(models)
        assert write_sbml(plain.model) == write_sbml(stored.model)
        assert plain.report.mappings == stored.report.mappings

    def test_spill_then_rehydrate(self, tmp_path):
        models = [_model("a"), _model("b", species=("B", "C"))]
        session = ComposeSession(artifact_store=str(tmp_path))
        before = session.compose_all(models)
        assert session.spill() > 0
        # Memo released: pinned inputs are gone...
        assert session._pinned == {}
        # ...but composing again rehydrates from disk, same result.
        after = session.compose_all(models)
        assert write_sbml(before.model) == write_sbml(after.model)

    def test_second_session_reuses_spilled_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        models = [_model("a"), _model("b", species=("B", "C"))]
        ComposeSession(artifact_store=store).compose_all(models)
        entries = len(store)
        assert entries > 0
        fresh = ComposeSession(artifact_store=store)
        result = fresh.compose_all([model.copy() for model in models])
        assert len(store) == entries  # copies hit, nothing recomputed
        assert sorted(result.model.global_ids()) == sorted(
            ComposeSession().compose_all(models).model.global_ids()
        )

    def test_spill_without_store_raises(self):
        with pytest.raises(ValueError):
            ComposeSession().spill()

    def test_invalidate_clears_digest_memo(self, tmp_path):
        session = ComposeSession(artifact_store=str(tmp_path))
        models = [_model("a"), _model("b", species=("B", "C"))]
        session.compose_all(models)
        session.invalidate()
        assert session._digests == {}
        assert session._pinned == {}


class TestStoreStatsAndQuarantine:
    """Corrupt/incompatible read counters and the corrupt/ sidecar."""

    def test_fresh_store_counts_nothing(self, tmp_path):
        assert ArtifactStore(tmp_path).stats() == {
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "incompatible": 0,
        }

    def test_hit_and_miss_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        assert store.get(digest) is None
        store.put(digest, compute_artifacts(model))
        assert store.get(digest) is not None
        stats = store.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_corrupt_read_is_counted_and_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        path = store.put(digest, compute_artifacts(model))
        path.write_bytes(b"bit rot")
        assert store.get(digest) is None
        assert store.stats()["corrupt"] == 1
        # The bad blob moved to corrupt/ — diagnosed once, not re-paid.
        assert not path.exists()
        moved = tmp_path / ArtifactStore.CORRUPT_DIR / path.name
        assert moved.read_bytes() == b"bit rot"
        # The slot is free again: recompute self-heals it.
        assert store.get_or_compute(model) is not None
        assert store.get(digest) is not None

    def test_incompatible_read_is_counted_not_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = model_digest(_model())
        path = store.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"format": 99, "artifacts": None}))
        assert store.get(digest) is None
        assert store.stats()["incompatible"] == 1
        assert path.exists()  # a newer writer may still want it


class TestStoreVerify:
    def test_clean_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_compute(_model("a"))
        store.get_or_compute(_model("b", species=("B", "C")))
        report = store.verify()
        assert report.clean
        assert (report.total, report.ok) == (2, 2)
        assert report.summary() == "2 entries, 2 ok"

    def test_verify_quarantines_corrupt_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        good = _model("other", species=("X", "Y"))
        store.get_or_compute(good)
        path = store.put(model_digest(model), compute_artifacts(model))
        path.write_bytes(b"garbage")
        report = store.verify()
        assert not report.clean
        assert report.corrupt == [model_digest(model)]
        assert report.ok == 1
        assert [p.parent.name for p in report.quarantined] == [
            ArtifactStore.CORRUPT_DIR
        ]
        assert not path.exists()
        assert "1 corrupt (1 quarantined)" in report.summary()

    def test_verify_keep_corrupt_leaves_blob_in_place(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        path = store.put(model_digest(model), compute_artifacts(model))
        path.write_bytes(b"garbage")
        report = store.verify(quarantine=False)
        assert report.corrupt and not report.quarantined
        assert path.exists()

    def test_verify_counts_incompatible_in_place(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = model_digest(_model())
        path = store.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"format": 99, "artifacts": None}))
        report = store.verify()
        assert report.incompatible == [digest]
        assert "format-incompatible" in report.summary()
        assert path.exists()

    def test_verify_never_refreshes_mtimes(self, tmp_path):
        import os

        store = ArtifactStore(tmp_path)
        model = _model()
        path = store.put(model_digest(model), compute_artifacts(model))
        os.utime(path, (1_000_000, 1_000_000))
        store.verify()
        assert path.stat().st_mtime == 1_000_000
