"""The deterministic fault-injection harness itself.

Chaos faults must be exact (budgets), reproducible (seeded rates) and
process-safe (on-disk tick claims) — otherwise the robustness tests
built on them prove nothing.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.core import chaos
from repro.errors import ReproError


class TestFault:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            chaos.Fault(site="s", action="explode")

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            chaos.Fault(site="s", action="raise", rate=1.5)

    def test_match_is_subset_equality(self):
        fault = chaos.Fault(
            site="pair-start", action="raise", match={"i": 1, "j": 3}
        )
        assert fault.matches("pair-start", {"i": 1, "j": 3, "worker": "w1"})
        assert not fault.matches("pair-start", {"i": 1, "j": 4})
        assert not fault.matches("chunk-start", {"i": 1, "j": 3})

    def test_empty_match_hits_every_trip(self):
        fault = chaos.Fault(site="s", action="raise")
        assert fault.matches("s", {"anything": 42})

    def test_payload_round_trip(self):
        fault = chaos.Fault(
            site="s",
            action="stall",
            match={"k": 1},
            times=None,
            stall_seconds=0.5,
            key="mine",
        )
        assert chaos.Fault.from_payload(fault.payload()) == fault


class TestChaosSpec:
    def test_save_load_round_trip(self, tmp_path):
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[chaos.Fault(site="s", action="raise", times=2)],
            seed=7,
        )
        path = spec.save(tmp_path / "chaos.json")
        loaded = chaos.ChaosSpec.load(path)
        assert loaded.seed == 7
        assert loaded.faults == spec.faults
        assert loaded.state_dir == tmp_path

    def test_times_budget_is_exact(self, tmp_path):
        fault = chaos.Fault(site="s", action="raise", times=3)
        spec = chaos.ChaosSpec(tmp_path, faults=[fault])
        fires = [spec.should_fire(fault, {}) for _ in range(10)]
        assert fires.count(True) == 3
        # The first three claims won, the rest found every tick taken.
        assert fires[:3] == [True, True, True]

    def test_times_budget_shared_across_instances(self, tmp_path):
        # Two spec instances over one state_dir model two processes:
        # the on-disk tick claims are the shared truth.
        fault = chaos.Fault(site="s", action="raise", times=1, key="k")
        first = chaos.ChaosSpec(tmp_path, faults=[fault])
        second = chaos.ChaosSpec(tmp_path, faults=[fault])
        assert first.should_fire(fault, {})
        assert not second.should_fire(fault, {})

    def test_unlimited_times(self, tmp_path):
        fault = chaos.Fault(site="s", action="raise", times=None)
        spec = chaos.ChaosSpec(tmp_path, faults=[fault])
        assert all(spec.should_fire(fault, {}) for _ in range(5))

    def test_rate_is_deterministic_per_seed(self, tmp_path):
        fault = chaos.Fault(site="s", action="raise", rate=0.5, key="r")
        contexts = [{"i": i} for i in range(64)]
        one = chaos.ChaosSpec(tmp_path, faults=[fault], seed=1)
        two = chaos.ChaosSpec(tmp_path, faults=[fault], seed=1)
        other = chaos.ChaosSpec(tmp_path, faults=[fault], seed=2)
        draws_one = [one.should_fire(fault, ctx) for ctx in contexts]
        assert draws_one == [two.should_fire(fault, ctx) for ctx in contexts]
        assert draws_one != [
            other.should_fire(fault, ctx) for ctx in contexts
        ]
        # A fair-ish rate actually fires sometimes and skips sometimes.
        assert 0 < draws_one.count(True) < len(contexts)


class TestTripAndAdvice:
    def test_unarmed_is_noop(self):
        chaos.trip("anywhere", i=1)
        assert not chaos.advice("anywhere", "corrupt")
        assert not chaos.armed()

    def test_raise_fault_raises_chaos_error(self, tmp_path):
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(
                    site="pair-start", action="raise", match={"i": 1}
                )
            ],
        )
        with chaos.active(spec, publish=False):
            assert chaos.armed()
            chaos.trip("pair-start", i=0)  # no match: silent
            with pytest.raises(chaos.ChaosError):
                chaos.trip("pair-start", i=1)
        assert not chaos.armed()

    def test_chaos_error_is_repro_error(self):
        # Poison pairs must be catchable like any organic engine bug.
        assert issubclass(chaos.ChaosError, ReproError)

    def test_chaos_kill_is_uncatchable_by_except_exception(self):
        assert issubclass(chaos.ChaosKill, BaseException)
        assert not issubclass(chaos.ChaosKill, Exception)

    def test_stall_fault_sleeps(self, tmp_path):
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(
                    site="heartbeat", action="stall", stall_seconds=0.05
                )
            ],
        )
        with chaos.active(spec, publish=False):
            started = time.perf_counter()
            chaos.trip("heartbeat")
            assert time.perf_counter() - started >= 0.04

    def test_advice_consumes_budget(self, tmp_path):
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(site="checkpoint-write", action="torn-write")
            ],
        )
        with chaos.active(spec, publish=False):
            assert chaos.advice("checkpoint-write", "torn-write")
            assert not chaos.advice("checkpoint-write", "torn-write")

    def test_advice_filters_by_action(self, tmp_path):
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[chaos.Fault(site="artifact-read", action="corrupt")],
        )
        with chaos.active(spec, publish=False):
            assert not chaos.advice("artifact-read", "torn-write")
            assert chaos.advice("artifact-read", "corrupt")


def _child_probe(path, queue):
    from repro.core import chaos as child_chaos

    queue.put(child_chaos.armed())
    try:
        child_chaos.trip("site")
        queue.put("survived")
    except child_chaos.ChaosError:
        queue.put("raised")


class TestEnvironmentPublish:
    def test_install_publishes_and_uninstall_clears(self, tmp_path):
        spec = chaos.ChaosSpec(
            tmp_path, faults=[chaos.Fault(site="site", action="raise")]
        )
        chaos.install(spec)
        try:
            published = os.environ.get(chaos.ENV_VAR)
            assert published is not None
            payload = json.loads(open(published).read())
            assert payload["faults"][0]["site"] == "site"
        finally:
            chaos.uninstall()
        assert os.environ.get(chaos.ENV_VAR) is None

    def test_child_process_arms_from_environment(self, tmp_path):
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[chaos.Fault(site="site", action="raise", times=1)],
        )
        chaos.install(spec)
        try:
            queue = multiprocessing.Queue()
            process = multiprocessing.Process(
                target=_child_probe, args=(str(tmp_path), queue)
            )
            process.start()
            process.join(timeout=30)
            assert queue.get(timeout=5) is True
            assert queue.get(timeout=5) == "raised"
        finally:
            chaos.uninstall()
