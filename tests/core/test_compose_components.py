"""Per-component-type composition behaviour (paper Figure 5)."""

import pytest

from repro import ModelBuilder, ComposeOptions, compose_all
from repro.errors import ConflictError
from repro.mathml import parse_infix
from repro.sbml import validate_model
from repro.synonyms import SynonymTable


def base_builder(model_id):
    return ModelBuilder(model_id).compartment("cell", size=1.0)


class TestSpeciesMatching:
    def test_same_id_united(self):
        a = base_builder("a").species("glc", 1.0).build()
        b = base_builder("b").species("glc", 1.0).build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.species) == 1
        assert ("species", "glc", "glc") in [
            (d.component_type, d.first_id, d.second_id)
            for d in report.duplicates
        ]

    def test_synonymous_names_united(self):
        # Heavy semantics: "ATP" and "adenosine triphosphate" are the
        # same entity via the built-in synonym table.
        a = base_builder("a").species("atp", 1.0, name="ATP").build()
        b = (
            base_builder("b")
            .species("s42", 1.0, name="adenosine triphosphate")
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.species) == 1
        assert report.mappings.get("s42") == "atp"

    def test_custom_synonym_table(self):
        table = SynonymTable([["foo", "bar"]])
        a = base_builder("a").species("foo", 1.0).build()
        b = base_builder("b").species("bar", 1.0).build()
        merged = compose_all([a, b], options=ComposeOptions(synonyms=table)).model
        assert len(merged.species) == 1

    def test_different_species_both_kept(self):
        a = base_builder("a").species("X", 1.0).build()
        b = base_builder("b").species("Y", 1.0).build()
        merged = compose_all([a, b]).model
        assert sorted(s.id for s in merged.species) == ["X", "Y"]

    def test_same_name_different_compartment_not_united(self):
        a = (
            ModelBuilder("a")
            .compartment("nucleus", size=0.1)
            .species("P", 1.0)
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("mito", size=0.2)
            .species("P", 1.0)
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.species) == 2
        assert len(merged.compartments) == 2
        # The colliding id from model 2 was renamed.
        assert report.renamed.get("P", "").startswith("P_")

    def test_initial_value_conflict_logged_first_wins(self):
        a = base_builder("a").species("X", 1.0).build()
        b = base_builder("b").species("X", 2.0).build()
        merged, report = compose_all([a, b]).pair()
        assert merged.get_species("X").initial_concentration == 1.0
        assert report.has_conflicts()
        assert report.conflicts[0].attribute == "initial value"

    def test_conflict_policy_error_raises(self):
        a = base_builder("a").species("X", 1.0).build()
        b = base_builder("b").species("X", 2.0).build()
        with pytest.raises(ConflictError):
            compose_all([a, b], options=ComposeOptions(conflicts="error"))

    def test_amount_vs_concentration_reconciled_via_figure6(self):
        # 1e-6 M in 1e-15 l is ~6.022e2 molecules (Fig 6: x = nA[X]V).
        volume = 1e-15
        molecules = 6.022e23 * 1e-6 * volume
        a = (
            ModelBuilder("a")
            .compartment("cell", size=volume)
            .species("X", 1e-6)
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=volume)
            .species("X", molecules, amount=True)
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert not report.has_conflicts()
        assert any("Figure 6" in w.message for w in report.warnings)

    def test_amount_vs_concentration_mismatch_is_conflict(self):
        a = (
            ModelBuilder("a")
            .compartment("cell", size=1e-15)
            .species("X", 1e-6)
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=1e-15)
            .species("X", 42.0, amount=True)
            .build()
        )
        report = compose_all([a, b]).report
        assert report.has_conflicts()

    def test_boundary_condition_conflict(self):
        a = base_builder("a").species("X", 1.0).build()
        b = base_builder("b").species("X", 1.0, boundary=True).build()
        report = compose_all([a, b]).report
        assert any(
            c.attribute == "boundaryCondition" for c in report.conflicts
        )


class TestCompartmentMatching:
    def test_synonymous_compartments_united(self):
        a = ModelBuilder("a").compartment("cytosol", size=1.0).build()
        b = ModelBuilder("b").compartment("cytoplasm", size=1.0).build()
        merged = compose_all([a, b]).model
        assert len(merged.compartments) == 1

    def test_size_conflict(self):
        a = ModelBuilder("a").compartment("cell", size=1.0).build()
        b = ModelBuilder("b").compartment("cell", size=2.0).build()
        merged, report = compose_all([a, b]).pair()
        assert merged.get_compartment("cell").size == 1.0
        assert report.has_conflicts()

    def test_size_agrees_after_unit_conversion(self):
        # 1 l vs 1000 ml: unit conversion resolves the "conflict".
        a = ModelBuilder("a").compartment("cell", size=1.0, units="litre").build()
        b = (
            ModelBuilder("b")
            .unit("ml", [("litre", 1, -3, 1.0)])
            .compartment("cell", size=1000.0, units="ml")
            .build()
        )
        report = compose_all([a, b]).report
        assert not report.has_conflicts()
        assert any(w.code == "unit-conversion" for w in report.warnings)

    def test_nested_compartments_remapped(self):
        a = ModelBuilder("a").compartment("cell", size=1.0).build()
        b = (
            ModelBuilder("b")
            .compartment("cytosol", size=1.0)
            .compartment("nucleus", size=0.1, outside="cytosol")
            .build()
        )
        merged = compose_all([a, b]).model
        # cytosol unified with cell (builtin synonyms); nucleus points
        # at the united compartment.
        nucleus = merged.get_compartment("nucleus")
        assert nucleus.outside == "cell"
        assert validate_model(merged) == []


class TestParameterPolicy:
    def test_equal_valued_parameters_united(self):
        a = base_builder("a").parameter("k", 1.0).build()
        b = base_builder("b").parameter("k", 1.0).build()
        merged = compose_all([a, b]).model
        assert len(merged.parameters) == 1

    def test_same_name_different_value_both_kept_renamed(self):
        # Paper: "All parameters in the original models have to be
        # included ... if two parameters have the same name, then one
        # is renamed to avoid conflicts."
        a = base_builder("a").parameter("k", 1.0).build()
        b = base_builder("b").parameter("k", 2.0).build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.parameters) == 2
        values = sorted(p.value for p in merged.parameters)
        assert values == [1.0, 2.0]
        assert "k" in report.renamed
        assert any(w.code == "parameter-clash" for w in report.warnings)

    def test_valueless_parameters_not_united(self):
        a = base_builder("a").parameter("k").build()
        b = base_builder("b").parameter("k").build()
        merged = compose_all([a, b]).model
        assert len(merged.parameters) == 2

    def test_unit_converted_parameters_united(self):
        a = (
            ModelBuilder("a")
            .unit("mM", [("mole", 1, -3, 1.0), ("litre", -1, 0, 1.0)])
            .compartment("cell")
            .parameter("Km", 1.0, units="mM")
            .build()
        )
        b = (
            ModelBuilder("b")
            .unit("M", [("mole", 1, 0, 1.0), ("litre", -1, 0, 1.0)])
            .compartment("cell")
            .parameter("Km", 0.001, units="M")
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.parameters) == 1
        assert any(w.code == "unit-conversion" for w in report.warnings)

    def test_renamed_parameter_references_follow(self):
        # The second model's reaction must use the renamed parameter.
        a = base_builder("a").species("A", 1.0).parameter("k", 1.0).build()
        b = (
            base_builder("b")
            .species("B", 1.0)
            .parameter("k", 2.0)
            .mass_action("r", ["B"], [], "k")
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        new_name = report.renamed["k"]
        law = merged.get_reaction("r").kinetic_law
        assert law.math == parse_infix(f"{new_name} * B")
        assert validate_model(merged) == []


class TestUnitDefinitionMatching:
    def test_same_canonical_unit_united(self):
        a = ModelBuilder("a").unit("per_sec", [("second", -1, 0, 1.0)]).build()
        b = ModelBuilder("b").unit("hz", [("second", -1, 0, 1.0)]).build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.unit_definitions) == 1
        assert report.mappings.get("hz") == "per_sec"

    def test_scale_vs_multiplier_united(self):
        a = ModelBuilder("a").unit("mmol", [("mole", 1, -3, 1.0)]).build()
        b = ModelBuilder("b").unit("mmol2", [("mole", 1, 0, 1e-3)]).build()
        merged = compose_all([a, b]).model
        assert len(merged.unit_definitions) == 1

    def test_id_collision_different_unit_renamed(self):
        a = ModelBuilder("a").unit("u", [("second", -1, 0, 1.0)]).build()
        b = ModelBuilder("b").unit("u", [("mole", 1, 0, 1.0)]).build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.unit_definitions) == 2
        assert "u" in report.renamed

    def test_species_units_follow_mapping(self):
        a = (
            ModelBuilder("a")
            .unit("mmol", [("mole", 1, -3, 1.0)])
            .compartment("cell")
            .build()
        )
        b = (
            ModelBuilder("b")
            .unit("millimole", [("mole", 1, -3, 1.0)])
            .compartment("cell")
            .species("X", 1.0, substance_units="millimole")
            .build()
        )
        merged = compose_all([a, b]).model
        assert merged.get_species("X").substance_units == "mmol"


class TestFunctionDefinitions:
    def test_alpha_equivalent_functions_united(self):
        a = ModelBuilder("a").function("f", ["x"], "2 * x").build()
        b = ModelBuilder("b").function("g", ["y"], "2 * y").build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.function_definitions) == 1
        assert report.mappings.get("g") == "f"

    def test_commutative_bodies_united(self):
        a = ModelBuilder("a").function("f", ["x", "y"], "x * y + 1").build()
        b = ModelBuilder("b").function("h", ["a", "b"], "1 + b * a").build()
        merged = compose_all([a, b]).model
        assert len(merged.function_definitions) == 1

    def test_id_collision_different_math_renamed(self):
        a = ModelBuilder("a").function("f", ["x"], "2 * x").build()
        b = ModelBuilder("b").function("f", ["x"], "3 * x").build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.function_definitions) == 2
        assert "f" in report.renamed

    def test_call_sites_follow_united_function(self):
        a = (
            base_builder("a")
            .function("dbl", ["x"], "2 * x")
            .species("A", 1.0)
            .reaction("r1", ["A"], [], formula="dbl(A)")
            .build()
        )
        b = (
            base_builder("b")
            .function("twice", ["z"], "2 * z")
            .species("B", 1.0)
            .reaction("r2", ["B"], [], formula="twice(B)")
            .build()
        )
        merged = compose_all([a, b]).model
        law = merged.get_reaction("r2").kinetic_law
        assert law.math == parse_infix("dbl(B)")
        assert validate_model(merged) == []
