"""Composition of math-carrying components: reactions, rules,
constraints, initial assignments, events (paper §3, Figures 7, 10-12).
"""

import pytest

from repro import ModelBuilder, ComposeOptions, compose_all
from repro.mathml import parse_infix
from repro.sbml import validate_model


def base(model_id):
    return ModelBuilder(model_id).compartment("cell", size=1.0)


class TestReactionMatching:
    def two_models_with_reaction(self, formula_a, formula_b, **species):
        builder_a = base("a")
        builder_b = base("b")
        for sid, value in species.items():
            builder_a.species(sid, value)
            builder_b.species(sid, value)
        builder_a.parameter("k1", 0.5).parameter("k2", 0.3)
        builder_b.parameter("k1", 0.5).parameter("k2", 0.3)
        a = builder_a.reaction(
            "rA", ["A"], ["B"], formula=formula_a
        ).build()
        b = builder_b.reaction(
            "rB", ["A"], ["B"], formula=formula_b
        ).build()
        return a, b

    def test_commutative_kinetic_laws_united(self):
        # The paper's flagship math case: operand order must not matter.
        a, b = self.two_models_with_reaction(
            "k1 * A * B", "B * k1 * A", A=1.0, B=2.0
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.reactions) == 1
        assert report.mappings.get("rB") == "rA"

    def test_different_laws_same_structure_conflict_first_wins(self):
        a, b = self.two_models_with_reaction(
            "k1 * A", "k2 * A", A=1.0, B=0.0
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.reactions) == 1
        assert merged.reactions[0].kinetic_law.math == parse_infix("k1 * A")
        assert any(c.attribute == "kineticLaw" for c in report.conflicts)

    def test_different_structure_not_united(self):
        a = (
            base("a")
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("k", 1.0)
            .mass_action("r1", ["A"], ["B"], "k")
            .build()
        )
        b = (
            base("b")
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("k", 1.0)
            .mass_action("r2", ["B"], ["A"], "k")  # reversed direction
            .build()
        )
        merged = compose_all([a, b]).model
        assert len(merged.reactions) == 2

    def test_stoichiometry_participates_in_identity(self):
        a = (
            base("a")
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("k", 1.0)
            .mass_action("r1", [("A", 2)], ["B"], "k")
            .build()
        )
        b = (
            base("b")
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("k", 1.0)
            .mass_action("r2", ["A"], ["B"], "k")
            .build()
        )
        merged = compose_all([a, b]).model
        assert len(merged.reactions) == 2

    def test_modifiers_participate_in_identity(self):
        a = (
            base("a")
            .species("S", 1.0)
            .species("P", 0.0)
            .species("E", 0.1)
            .parameter("Vmax", 1.0)
            .parameter("Km", 0.5)
            .michaelis_menten("r1", "S", "P", "Vmax", "Km", enzyme="E")
            .build()
        )
        b = (
            base("b")
            .species("S", 1.0)
            .species("P", 0.0)
            .parameter("Vmax", 1.0)
            .parameter("Km", 0.5)
            .michaelis_menten("r2", "S", "P", "Vmax", "Km")
            .build()
        )
        merged = compose_all([a, b]).model
        assert len(merged.reactions) == 2

    def test_michaelis_menten_laws_united_commutatively(self):
        # Fig 12 kinetics with reordered denominator.
        a = (
            base("a")
            .species("S", 1.0)
            .species("P", 0.0)
            .parameter("Vmax", 1.0)
            .parameter("Km", 0.5)
            .reaction("r1", ["S"], ["P"], formula="Vmax*S/(Km+S)")
            .build()
        )
        b = (
            base("b")
            .species("S", 1.0)
            .species("P", 0.0)
            .parameter("Vmax", 1.0)
            .parameter("Km", 0.5)
            .reaction("r2", ["S"], ["P"], formula="S*Vmax/(S+Km)")
            .build()
        )
        merged = compose_all([a, b]).model
        assert len(merged.reactions) == 1

    def test_local_parameters_compared_by_value(self):
        a = (
            base("a")
            .species("A", 1.0)
            .reaction("r1", ["A"], [], formula="k*A", local_parameters={"k": 2.0})
            .build()
        )
        b = (
            base("b")
            .species("A", 1.0)
            .reaction(
                "r2", ["A"], [], formula="rate*A", local_parameters={"rate": 2.0}
            )
            .build()
        )
        merged = compose_all([a, b]).model
        assert len(merged.reactions) == 1

    def test_local_parameters_different_value_conflict(self):
        a = (
            base("a")
            .species("A", 1.0)
            .reaction("r1", ["A"], [], formula="k*A", local_parameters={"k": 2.0})
            .build()
        )
        b = (
            base("b")
            .species("A", 1.0)
            .reaction("r2", ["A"], [], formula="k*A", local_parameters={"k": 3.0})
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.reactions) == 1  # same structure: united
        assert report.has_conflicts()

    def test_figure6_rate_constant_reconciliation(self):
        # First-order: deterministic and stochastic constants coincide,
        # but express k via differently-named globals.
        volume = 1e-15
        a = (
            ModelBuilder("a")
            .compartment("cell", size=volume)
            .species("A", 1.0)
            .parameter("k_det", 0.7)
            .reaction("r1", ["A"], [], formula="k_det * A")
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=volume)
            .species("A", 1.0)
            .parameter("c_stoch", 0.7)
            .reaction("r2", ["A"], [], formula="c_stoch * A")
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.reactions) == 1
        assert not any(
            c.attribute == "kineticLaw" for c in report.conflicts
        )

    def test_figure6_second_order_conversion_detected(self):
        # c = k / (nA V): a deterministic model (k) merged with its
        # stochastic counterpart (c) should reconcile, not conflict.
        volume = 1e-15
        k_det = 1e6
        c_stoch = k_det / (6.022e23 * volume)
        a = (
            ModelBuilder("a")
            .compartment("cell", size=volume)
            .species("A", 1.0)
            .species("B", 1.0)
            .species("AB", 0.0)
            .parameter("k", k_det)
            .mass_action("r1", ["A", "B"], ["AB"], "k")
            .build()
        )
        b = (
            ModelBuilder("b")
            .compartment("cell", size=volume)
            .species("A", 1.0)
            .species("B", 1.0)
            .species("AB", 0.0)
            .parameter("c", c_stoch)
            .mass_action("r2", ["A", "B"], ["AB"], "c")
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.reactions) == 1
        assert any("conversion" in w.message for w in report.warnings)
        assert not any(c.attribute == "kineticLaw" for c in report.conflicts)


class TestRules:
    def test_identical_assignment_rules_united(self):
        a = (
            base("a")
            .species("A", 1.0)
            .parameter("total", constant=False)
            .assignment_rule("total", "A * 2")
            .build()
        )
        b = (
            base("b")
            .species("A", 1.0)
            .parameter("total", constant=False)
            .assignment_rule("total", "2 * A")
            .build()
        )
        merged = compose_all([a, b]).model
        assert len(merged.rules) == 1

    def test_conflicting_rules_first_wins(self):
        a = (
            base("a")
            .species("A", 1.0)
            .parameter("t", constant=False)
            .assignment_rule("t", "A * 2")
            .build()
        )
        b = (
            base("b")
            .species("A", 1.0)
            .parameter("t", constant=False)
            .assignment_rule("t", "A * 3")
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert len(merged.rules) == 1
        assert merged.rules[0].math == parse_infix("A * 2")
        assert report.has_conflicts()
        assert validate_model(merged) == []

    def test_rate_rule_vs_assignment_rule_distinct(self):
        a = (
            base("a")
            .species("A", 1.0, boundary=True)
            .rate_rule("A", "-0.1 * A")
            .build()
        )
        b = (
            base("b")
            .species("B", 1.0)
            .parameter("p", constant=False)
            .assignment_rule("p", "B + 1")
            .build()
        )
        merged = compose_all([a, b]).model
        assert len(merged.rules) == 2

    def test_algebraic_rules_united_by_pattern(self):
        a = base("a").species("A", 1.0).algebraic_rule("A - 1").build()
        b = base("b").species("A", 1.0).algebraic_rule("A - 1").build()
        merged = compose_all([a, b]).model
        assert len(merged.rules) == 1

    def test_rule_variables_follow_species_mapping(self):
        a = base("a").species("atp", 1.0, name="ATP").build()
        b = (
            base("b")
            .species("s1", 1.0, name="adenosine triphosphate", boundary=True)
            .rate_rule("s1", "-0.1 * s1")
            .build()
        )
        merged, report = compose_all([a, b]).pair()
        assert merged.rules[0].variable == "atp"
        assert merged.rules[0].math == parse_infix("-0.1 * atp")


class TestInitialAssignments:
    def test_identical_united(self):
        a = base("a").species("A", 1.0).initial_assignment("A", "2 + 1").build()
        b = base("b").species("A", 1.0).initial_assignment("A", "1 + 2").build()
        merged = compose_all([a, b]).model
        assert len(merged.initial_assignments) == 1

    def test_evaluated_equality(self):
        # The paper's novelty vs semanticSBML: decide equality of
        # syntactically different initial assignments by evaluation.
        a = base("a").species("A", 1.0).initial_assignment("A", "2 * 3").build()
        b = base("b").species("A", 1.0).initial_assignment("A", "6").build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.initial_assignments) == 1
        assert not report.has_conflicts()
        assert any(w.code == "math-evaluated" for w in report.warnings)

    def test_unequal_values_conflict_first_wins(self):
        a = base("a").species("A", 1.0).initial_assignment("A", "6").build()
        b = base("b").species("A", 1.0).initial_assignment("A", "7").build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.initial_assignments) == 1
        assert report.has_conflicts()

    def test_evaluation_disabled_falls_back_to_conflict(self):
        options = ComposeOptions(evaluate_initial_assignments=False)
        a = base("a").species("A", 1.0).initial_assignment("A", "2 * 3").build()
        b = base("b").species("A", 1.0).initial_assignment("A", "6").build()
        report = compose_all([a, b], options=options).report
        assert report.has_conflicts()

    def test_distinct_symbols_union(self):
        a = base("a").species("A", 1.0).initial_assignment("A", "1").build()
        b = base("b").species("B", 1.0).initial_assignment("B", "2").build()
        merged = compose_all([a, b]).model
        assert len(merged.initial_assignments) == 2


class TestConstraints:
    def test_identical_constraints_united(self):
        a = base("a").species("A", 1.0).constraint("A >= 0").build()
        b = base("b").species("A", 1.0).constraint("0 <= A").build()
        merged = compose_all([a, b]).model
        # Note: `A >= 0` and `0 <= A` are NOT pattern-equal (different
        # operators); only commutativity is free. Expect 2.
        assert len(merged.constraints) == 2

    def test_commutative_constraints_united(self):
        a = base("a").species("A", 1.0).species("B", 1.0).constraint(
            "A + B <= 10"
        ).build()
        b = base("b").species("A", 1.0).species("B", 1.0).constraint(
            "B + A <= 10"
        ).build()
        merged = compose_all([a, b]).model
        assert len(merged.constraints) == 1

    def test_different_constraints_union(self):
        a = base("a").species("A", 1.0).constraint("A >= 0").build()
        b = base("b").species("A", 1.0).constraint("A <= 100").build()
        merged = compose_all([a, b]).model
        assert len(merged.constraints) == 2


class TestEvents:
    def test_identical_events_united(self):
        a = base("a").species("A", 1.0).event(
            "e1", "A < 0.5", {"A": "10"}
        ).build()
        b = base("b").species("A", 1.0).event(
            "e2", "A < 0.5", {"A": "10"}
        ).build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.events) == 1
        assert report.mappings.get("e2") == "e1"

    def test_different_trigger_union(self):
        a = base("a").species("A", 1.0).event("e1", "A < 0.5", {"A": "10"}).build()
        b = base("b").species("A", 1.0).event("e2", "A < 0.1", {"A": "10"}).build()
        merged = compose_all([a, b]).model
        assert len(merged.events) == 2

    def test_different_delay_union(self):
        a = base("a").species("A", 1.0).event("e1", "A < 0.5", {"A": "10"}).build()
        b = base("b").species("A", 1.0).event(
            "e2", "A < 0.5", {"A": "10"}, delay="3"
        ).build()
        merged = compose_all([a, b]).model
        assert len(merged.events) == 2

    def test_id_collision_renamed(self):
        a = base("a").species("A", 1.0).event("e", "A < 0.5", {"A": "10"}).build()
        b = base("b").species("A", 1.0).event("e", "A < 0.1", {"A": "10"}).build()
        merged, report = compose_all([a, b]).pair()
        assert len(merged.events) == 2
        assert "e" in report.renamed
        assert validate_model(merged) == []

    def test_event_math_follows_mapping(self):
        a = base("a").species("atp", 1.0, name="ATP").build()
        b = base("b").species("s9", 1.0, name="Adenosine Triphosphate").event(
            "refill", "s9 < 0.1", {"s9": "s9 + 1"}
        ).build()
        merged = compose_all([a, b]).model
        event = merged.get_event("refill")
        assert event.trigger.math == parse_infix("atp < 0.1")
        assert event.assignments[0].variable == "atp"
