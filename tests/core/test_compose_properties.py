"""Property-based tests for composition invariants (hypothesis).

The algebra of composition the paper's Figures 1-3 sketch:

* idempotence: ``m + m ≅ m``,
* size bounds: ``max(|a|,|b|) ≤ |a + b| ≤ |a| + |b|``,
* commutativity up to renaming: ``a+b`` and ``b+a`` have the same
  species/reaction multisets (ids may differ by rename),
* the result is always valid SBML,
* disjoint models compose to the exact disjoint union.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ModelBuilder, compose_all
from repro.eval import models_equivalent
from repro.sbml import validate_model

SPECIES_POOL = [f"sp{i}" for i in range(12)]


@st.composite
def models(draw, pool=None, model_id="m"):
    """A small random-but-valid mass-action model.

    Reactant→product pairs are unique within one model: a model with
    two *structurally identical* reactions matches either of them when
    looked up per Figure 5, so reaction-count commutativity only holds
    on duplicate-free inputs (real models never carry two byte-equal
    reactions; the engine treats them as the modelling error they are).
    """
    pool = pool if pool is not None else SPECIES_POOL
    species = draw(
        st.lists(
            st.sampled_from(pool), min_size=1, max_size=6, unique=True
        )
    )
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder.species(
            name, float(draw(st.integers(min_value=0, max_value=20)))
        )
    n_reactions = draw(st.integers(min_value=0, max_value=4))
    used_pairs = set()
    for index in range(n_reactions):
        if len(species) < 2:
            break
        pair = tuple(
            draw(
                st.lists(
                    st.sampled_from(species),
                    min_size=2,
                    max_size=2,
                    unique=True,
                )
            )
        )
        if pair in used_pairs:
            continue
        used_pairs.add(pair)
        k = draw(st.integers(min_value=1, max_value=9)) / 10.0
        builder.reaction(
            f"r_{pair[0]}_{pair[1]}_{index}",
            [pair[0]],
            [pair[1]],
            formula=f"k_loc * {pair[0]}",
            local_parameters={"k_loc": k},
        )
    return builder.build()


@given(models())
@settings(max_examples=60, deadline=None)
def test_idempotence(model):
    merged, report = compose_all([model, model.copy()]).pair()
    merged.id = model.id
    assert models_equivalent(model, merged)
    assert report.total_added == 0


@given(models(), models(model_id="m2"))
@settings(max_examples=60, deadline=None)
def test_size_bounds(first, second):
    merged = compose_all([first, second]).model
    assert merged.num_nodes() <= first.num_nodes() + second.num_nodes()
    assert merged.num_nodes() >= max(first.num_nodes(), second.num_nodes())
    assert len(merged.reactions) <= (
        len(first.reactions) + len(second.reactions)
    )


@given(models(), models(model_id="m2"))
@settings(max_examples=60, deadline=None)
def test_result_always_valid(first, second):
    merged = compose_all([first, second]).model
    errors = [
        issue
        for issue in validate_model(merged)
        if issue.severity == "error"
    ]
    assert errors == []


@given(models(), models(model_id="m2"))
@settings(max_examples=60, deadline=None)
def test_commutative_species_sets(first, second):
    forward = compose_all([first, second]).model
    backward = compose_all([second, first]).model
    assert forward.num_nodes() == backward.num_nodes()
    assert len(forward.reactions) == len(backward.reactions)
    # Species names (before renames, names carry identity) agree.
    forward_names = sorted(s.name or s.id for s in forward.species)
    backward_names = sorted(s.name or s.id for s in backward.species)
    assert forward_names == backward_names


@given(
    models(pool=[f"left{i}" for i in range(6)]),
    models(pool=[f"right{i}" for i in range(6)], model_id="m2"),
)
@settings(max_examples=60, deadline=None)
def test_disjoint_union(first, second):
    merged, report = compose_all([first, second]).pair()
    assert merged.num_nodes() == first.num_nodes() + second.num_nodes()
    assert len(merged.reactions) == (
        len(first.reactions) + len(second.reactions)
    )
    united_species = [
        d for d in report.duplicates if d.component_type == "species"
    ]
    assert united_species == []


@given(models(), models(model_id="m2"))
@settings(max_examples=40, deadline=None)
def test_compose_deterministic(first, second):
    once, report_once = compose_all([first, second]).pair()
    twice, report_twice = compose_all([first, second]).pair()
    assert models_equivalent(once, twice)
    assert report_once.mappings == report_twice.mappings


@given(models(), models(model_id="m2"), models(model_id="m3"))
@settings(max_examples=30, deadline=None)
def test_associative_in_size(first, second, third):
    left_inner = compose_all([first, second]).model
    left = compose_all([left_inner, third]).model
    right_inner = compose_all([second, third]).model
    right = compose_all([first, right_inner]).model
    assert left.num_nodes() == right.num_nodes()


@given(models())
@settings(max_examples=40, deadline=None)
def test_empty_identity(model):
    empty = ModelBuilder("empty").build()
    left = compose_all([empty, model]).model
    right = compose_all([model, empty]).model
    left.id = model.id
    right.id = model.id
    assert models_equivalent(model, left)
    assert models_equivalent(model, right)
