"""Unit tests for unit-aware conflict resolution helpers."""

import pytest

from repro.core.conflicts import (
    compare_species_initial,
    compare_values,
    reconcile_rate_constants,
)
from repro.units import AVOGADRO, Unit, UnitDefinition, UnitRegistry


@pytest.fixture
def registry():
    return UnitRegistry(
        [
            UnitDefinition("mM", None, [Unit("mole", 1, -3), Unit("litre", -1)]),
            UnitDefinition("M", None, [Unit("mole", 1), Unit("litre", -1)]),
            UnitDefinition("ml", None, [Unit("litre", 1, -3)]),
        ]
    )


class TestCompareValues:
    def test_both_none_equal(self):
        assert compare_values(None, None).equal

    def test_one_none_not_equal(self):
        assert not compare_values(1.0, None).equal
        assert not compare_values(None, 1.0).equal

    def test_plain_equality(self):
        assert compare_values(2.0, 2.0).equal

    def test_tolerance(self):
        assert compare_values(1.0, 1.0 + 1e-12).equal
        assert not compare_values(1.0, 1.001).equal

    def test_unit_conversion_resolves(self, registry):
        # 1 mM == 0.001 M
        comparison = compare_values(
            1.0, 0.001, "mM", "M", registry
        )
        assert comparison.equal
        assert comparison.note is not None

    def test_unit_conversion_mismatch(self, registry):
        comparison = compare_values(1.0, 0.5, "mM", "M", registry)
        assert not comparison.equal

    def test_unknown_units_fall_back_to_inequality(self, registry):
        assert not compare_values(1.0, 2.0, "blorp", "M", registry).equal

    def test_incompatible_dimensions_not_equal(self, registry):
        assert not compare_values(1.0, 1000.0, "mM", "ml", registry).equal

    def test_no_registry_no_conversion(self):
        assert not compare_values(1.0, 0.001, "mM", "M", None).equal

    def test_second_registry_used_for_second_units(self, registry):
        # Second model defines its own "conc" id meaning mM.
        second = UnitRegistry(
            [UnitDefinition("conc", None, [Unit("mole", 1, -3), Unit("litre", -1)])]
        )
        comparison = compare_values(
            0.001, 1.0, "M", "conc", registry, second
        )
        assert comparison.equal


class TestCompareSpeciesInitial:
    def test_same_convention_plain(self):
        assert compare_species_initial(1.0, 1.0, False, False, None).equal

    def test_mixed_convention_figure6(self):
        volume = 1e-15
        concentration = 1e-6
        molecules = AVOGADRO * concentration * volume
        comparison = compare_species_initial(
            concentration, molecules, False, True, volume
        )
        assert comparison.equal
        assert "Figure 6" in comparison.note

    def test_mixed_convention_reversed_order(self):
        volume = 1e-15
        concentration = 1e-6
        molecules = AVOGADRO * concentration * volume
        assert compare_species_initial(
            molecules, concentration, True, False, volume
        ).equal

    def test_mixed_convention_requires_volume(self):
        assert not compare_species_initial(
            1e-6, 602.2, False, True, None
        ).equal
        assert not compare_species_initial(
            1e-6, 602.2, False, True, 0.0
        ).equal

    def test_mixed_convention_mismatch(self):
        assert not compare_species_initial(
            1e-6, 999.0, False, True, 1e-15
        ).equal


class TestReconcileRateConstants:
    def test_plain_equality(self):
        assert reconcile_rate_constants(0.5, 0.5, 1, None).equal

    def test_first_order_identity(self):
        # Order 1: deterministic == stochastic, no conversion needed.
        assert reconcile_rate_constants(0.7, 0.7, 1, 1e-15).equal

    def test_zeroth_order_conversion(self):
        volume = 1e-15
        k = 2.0
        c = AVOGADRO * k * volume
        comparison = reconcile_rate_constants(k, c, 0, volume)
        assert comparison.equal
        assert "conversion" in comparison.note

    def test_second_order_conversion(self):
        volume = 1e-15
        k = 1e6
        c = k / (AVOGADRO * volume)
        assert reconcile_rate_constants(k, c, 2, volume).equal

    def test_second_order_conversion_reversed(self):
        volume = 1e-15
        k = 1e6
        c = k / (AVOGADRO * volume)
        assert reconcile_rate_constants(c, k, 2, volume).equal

    def test_unrelated_constants_conflict(self):
        assert not reconcile_rate_constants(1.0, 7.0, 1, 1e-15).equal

    def test_requires_volume(self):
        assert not reconcile_rate_constants(1.0, 6.022e8, 2, None).equal

    def test_unsupported_order(self):
        # Order 3 has no Figure 6 rule: only plain equality counts.
        assert not reconcile_rate_constants(1.0, 2.0, 3, 1e-15).equal
        assert reconcile_rate_constants(1.5, 1.5, 3, 1e-15).equal
