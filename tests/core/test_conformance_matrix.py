"""Differential conformance matrix over every execution path.

The engine now has many ways to compute the same composition: the
legacy ``compose(a, b)`` shim chained by hand, a session fold, a
balanced tree, the greedy-similarity plan, the parallel tree executor
on both backends, and the sharded all-pairs sweep.  Each path exists
for performance or deployment shape — none of them is allowed to
change the *answer*.  This matrix pins that guarantee differentially:
every path is run over the same corpora and compared against one
reference, on composed ids, id mappings, provenance and step records.

Equality strength per path:

* composed global ids, id mappings and provenance origins — identical
  across **all** paths (including greedy, which merges in a different
  order but must unite the same things);
* serialized model bytes — identical for every path that folds in
  input order (legacy/fold/tree/parallel×2).  The greedy plan reorders
  inputs, so its component *order* may differ while ids/content match;
* step records — identical between the serial tree and both parallel
  backends (scheduling must not leak into the record), and pairwise
  between the legacy shim chain and the session fold;
* the sharded sweep — the union of any shard layout equals the
  unsharded sweep on every run-invariant field, both when the
  per-model artifacts (including the pattern tables that seed the
  engine's PatternCache) are computed fresh and when they rehydrate
  from a populated artifact store.
"""

import warnings

import pytest

from repro import compose, compose_all, match_all, match_all_sharded, write_sbml
from repro.core.match_all import MatchMatrix
from repro.corpus import generate_corpus
from repro.corpus.curated import (
    drug_inhibition,
    gene_expression,
    glycolysis_lower,
    glycolysis_upper,
    mapk_cascade,
)

PATHS = [
    "legacy",
    "fold",
    "tree",
    "greedy",
    "parallel-thread",
    "parallel-process",
]


@pytest.fixture(scope="module")
def corpora():
    corpus = generate_corpus(seed=42)
    return {
        # The 10-model chain the compose benchmarks run.
        "chain": corpus[:: max(1, len(corpus) // 10)][:10],
        # Curated sample: the paper's flagship merges.
        "curated": [
            glycolysis_upper(),
            glycolysis_lower(),
            mapk_cascade(),
            drug_inhibition(),
            gene_expression(),
        ],
    }


def _run_path(path, models):
    """Execute one path; returns (result, xml) — result is None for
    the legacy chain, which has no session-level record."""
    if path == "legacy":
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            accumulator = models[0]
            step_reports = []
            for model in models[1:]:
                accumulator, report = compose(accumulator, model)
                step_reports.append(report)
        return None, write_sbml(accumulator), step_reports
    plan = {"fold": "fold", "tree": "tree", "greedy": "greedy"}.get(path)
    if plan is not None:
        result = compose_all(models, plan=plan)
    elif path == "parallel-thread":
        result = compose_all(models, plan="tree", workers=3, backend="thread")
    elif path == "parallel-process":
        result = compose_all(models, plan="tree", workers=2, backend="process")
    else:  # pragma: no cover - matrix misconfiguration
        raise AssertionError(path)
    return result, write_sbml(result.model), [s.report for s in result.steps]


def _semantic_signature(ids, mappings, provenance):
    return {
        "ids": sorted(ids),
        "mappings": dict(mappings),
        "origins": {
            key: sorted(entry.origins) for key, entry in provenance.items()
        }
        if provenance is not None
        else None,
    }


@pytest.fixture(scope="module")
def references(corpora):
    refs = {}
    for name, models in corpora.items():
        fold, fold_xml, fold_reports = _run_path("fold", models)
        tree, tree_xml, _ = _run_path("tree", models)
        refs[name] = {
            "models": models,
            "fold": fold,
            "fold_xml": fold_xml,
            "fold_reports": fold_reports,
            "tree": tree,
            "tree_xml": tree_xml,
        }
    return refs


@pytest.mark.parametrize("corpus_name", ["chain", "curated"])
@pytest.mark.parametrize("path", PATHS)
def test_conformance(path, corpus_name, references):
    ref = references[corpus_name]
    result, xml, step_reports = _run_path(path, ref["models"])

    fold = ref["fold"]
    expected = _semantic_signature(
        fold.model.global_ids(), fold.report.mappings, fold.provenance
    )

    if result is not None:
        actual = _semantic_signature(
            result.model.global_ids(), result.report.mappings, result.provenance
        )
        assert actual == expected
    # The legacy chain has no session-level record; its final ids are
    # covered by the byte-identity check below and its per-step
    # reports by the report comparison at the end.

    # Serialized bytes: identical for every input-order path.  The
    # greedy plan may reorder components (different merge order), but
    # its ids/mappings/provenance matched above.
    if path != "greedy":
        reference_xml = (
            ref["tree_xml"] if path.startswith("parallel") else ref["fold_xml"]
        )
        assert xml == reference_xml

    # Step records: scheduling must not leak into the record.
    if path.startswith("parallel"):
        serial_steps = ref["tree"].steps
        assert [s.index for s in result.steps] == [
            s.index for s in serial_steps
        ]
        assert [(s.left, s.right) for s in result.steps] == [
            (s.left, s.right) for s in serial_steps
        ]
        for parallel_step, serial_step in zip(result.steps, serial_steps):
            assert _report_record(parallel_step.report) == _report_record(
                serial_step.report
            )
    if path == "legacy":
        assert len(step_reports) == len(ref["fold_reports"])
        for legacy_report, fold_report in zip(
            step_reports, ref["fold_reports"]
        ):
            assert _report_record(legacy_report) == _report_record(fold_report)


def _report_record(report):
    """The run-invariant content of one step's merge report."""
    return (
        sorted(str(d) for d in report.duplicates),
        report.total_added,
        dict(report.renamed),
        dict(report.mappings),
        sorted(str(c) for c in report.conflicts),
    )


@pytest.mark.parametrize("corpus_name", ["chain", "curated"])
@pytest.mark.parametrize(
    "shards,workers,backend",
    [(2, 1, "thread"), (5, 1, "thread"), (2, 3, "thread"), (2, 2, "process")],
)
def test_sharded_sweep_conformance(
    corpus_name, shards, workers, backend, corpora, tmp_path
):
    """The sweep path of the matrix: any shard layout and fanout
    unions back to the unsharded engine, field for field."""
    models = corpora[corpus_name]
    reference = match_all(models)
    parts = [
        match_all_sharded(
            models,
            shards=shards,
            shard_id=shard_id,
            workers=workers,
            backend=backend,
            store=tmp_path / "artifacts",
        )
        for shard_id in range(shards)
    ]
    merged = MatchMatrix.union(parts)
    assert [o.key() for o in merged.outcomes] == [
        o.key() for o in reference.outcomes
    ]
    # Second pass over the now-populated store: every per-model
    # artifact — including the canonical pattern tables that seed the
    # pair engine's PatternCache — rehydrates from disk instead of
    # being computed, and the outcomes must not move.
    rehydrated = [
        match_all_sharded(
            models,
            shards=shards,
            shard_id=shard_id,
            workers=workers,
            backend=backend,
            store=tmp_path / "artifacts",
        )
        for shard_id in range(shards)
    ]
    assert [o.key() for o in MatchMatrix.union(rehydrated).outcomes] == [
        o.key() for o in reference.outcomes
    ]
