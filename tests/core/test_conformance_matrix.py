"""Differential conformance matrix over every execution path.

The engine now has many ways to compute the same composition: the
legacy ``compose(a, b)`` shim chained by hand, a session fold, a
balanced tree, the greedy-similarity plan, the parallel tree executor
on both backends, and the sharded all-pairs sweep.  Each path exists
for performance or deployment shape — none of them is allowed to
change the *answer*.  This matrix pins that guarantee differentially:
every path is run over the same corpora and compared against one
reference, on composed ids, id mappings, provenance and step records.

Equality strength per path:

* composed global ids, id mappings and provenance origins — identical
  across **all** paths (including greedy, which merges in a different
  order but must unite the same things);
* serialized model bytes — identical for every path that folds in
  input order (legacy/fold/tree/parallel×2).  The greedy plan reorders
  inputs, so its component *order* may differ while ids/content match;
* step records — identical between the serial tree and both parallel
  backends (scheduling must not leak into the record), and pairwise
  between the legacy shim chain and the session fold;
* the sharded sweep — the union of any shard layout equals the
  unsharded sweep on every run-invariant field, both when the
  per-model artifacts (including the pattern tables that seed the
  engine's PatternCache) are computed fresh and when they rehydrate
  from a populated artifact store;
* the **prebuilt-index sweep** (the seventh path) — the default
  engine, which materialises each model's twelve phase indexes once
  (``ModelIndexSet``) and merges through copy-on-write overlays, is
  byte-identical to the fresh-index sweep (``prebuilt_indexes=False``)
  on the deterministic CSV, and stays identical when the index rows
  rehydrate from a store — including a store holding *format-2*
  entries that predate the index artifact (their missing index table
  is computed lazily, not treated as corruption).  A hypothesis
  property additionally pins ``OverlayIndex`` against a freshly built
  index — identical first-registration-wins hits for any interleaving
  of adds and probes, on real ``biomodels_like`` index rows, across
  all three index strategies;
* the **prescreened sweep** (the eighth path) — the signature
  prescreen prunes pairs whose outcome the twin-congruence check can
  synthesize and the pair engine never runs them; the resulting
  matrix is byte-identical to the full sweep on the deterministic
  CSV, in memory, through a store (including format-3 entries that
  predate the signature artifact), and shared across shards.  A
  hypothesis property states the safety side directly: a pruned pair
  is always one the full matcher composes with zero renames and zero
  conflicts;
* the **digest-shipped sweep** (the ninth path) — process workers
  receive a ``(label, digest)`` manifest instead of the pickled
  corpus and rehydrate each model from the store's format-5 canonical
  SBML blob on first touch; the resulting matrix is byte-identical to
  the in-memory sweep on the deterministic CSV — plain pool and
  supervised coordinator, populating the store and rehydrating from
  it, through the escape hatch and the automatic temp store, and (a
  hypothesis property) for any shard layout and worker count;
* the **remote supervised sweep** (the tenth path) — workers joined
  over loopback TCP (``sbmlcompose worker``) compute shards through
  the framed socket transport and the digest-fetch protocol, mixed
  with a local pipe worker, with one remote chaos-killed mid-shard
  and one pair quarantined as poison; the merged CSV is byte-identical
  to the unsharded in-memory sweep minus exactly the quarantined
  pair.
"""

import io
import pickle
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import compose, compose_all, match_all, match_all_sharded, write_sbml
from repro.core.artifact_store import (
    ArtifactStore,
    compute_artifacts,
    corpus_fingerprint,
    model_digest,
)
from repro.core.compose import ModelIndexSet
from repro.core.index import OverlayIndex, make_index
from repro.core.match_all import MatchMatrix, write_outcomes
from repro.core.options import ComposeOptions
from repro.core.signature import Prescreen
from repro.corpus import generate_corpus
from repro.corpus.biomodels_like import generate_model
from repro.corpus.curated import (
    drug_inhibition,
    gene_expression,
    glycolysis_lower,
    glycolysis_upper,
    mapk_cascade,
)

PATHS = [
    "legacy",
    "fold",
    "tree",
    "greedy",
    "parallel-thread",
    "parallel-process",
]


@pytest.fixture(scope="module")
def corpora():
    corpus = generate_corpus(seed=42)
    return {
        # The 10-model chain the compose benchmarks run.
        "chain": corpus[:: max(1, len(corpus) // 10)][:10],
        # Curated sample: the paper's flagship merges.
        "curated": [
            glycolysis_upper(),
            glycolysis_lower(),
            mapk_cascade(),
            drug_inhibition(),
            gene_expression(),
        ],
    }


def _run_path(path, models):
    """Execute one path; returns (result, xml) — result is None for
    the legacy chain, which has no session-level record."""
    if path == "legacy":
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            accumulator = models[0]
            step_reports = []
            for model in models[1:]:
                accumulator, report = compose(accumulator, model)
                step_reports.append(report)
        return None, write_sbml(accumulator), step_reports
    plan = {"fold": "fold", "tree": "tree", "greedy": "greedy"}.get(path)
    if plan is not None:
        result = compose_all(models, plan=plan)
    elif path == "parallel-thread":
        result = compose_all(models, plan="tree", workers=3, backend="thread")
    elif path == "parallel-process":
        result = compose_all(models, plan="tree", workers=2, backend="process")
    else:  # pragma: no cover - matrix misconfiguration
        raise AssertionError(path)
    return result, write_sbml(result.model), [s.report for s in result.steps]


def _semantic_signature(ids, mappings, provenance):
    return {
        "ids": sorted(ids),
        "mappings": dict(mappings),
        "origins": {
            key: sorted(entry.origins) for key, entry in provenance.items()
        }
        if provenance is not None
        else None,
    }


@pytest.fixture(scope="module")
def references(corpora):
    refs = {}
    for name, models in corpora.items():
        fold, fold_xml, fold_reports = _run_path("fold", models)
        tree, tree_xml, _ = _run_path("tree", models)
        refs[name] = {
            "models": models,
            "fold": fold,
            "fold_xml": fold_xml,
            "fold_reports": fold_reports,
            "tree": tree,
            "tree_xml": tree_xml,
        }
    return refs


@pytest.mark.parametrize("corpus_name", ["chain", "curated"])
@pytest.mark.parametrize("path", PATHS)
def test_conformance(path, corpus_name, references):
    ref = references[corpus_name]
    result, xml, step_reports = _run_path(path, ref["models"])

    fold = ref["fold"]
    expected = _semantic_signature(
        fold.model.global_ids(), fold.report.mappings, fold.provenance
    )

    if result is not None:
        actual = _semantic_signature(
            result.model.global_ids(), result.report.mappings, result.provenance
        )
        assert actual == expected
    # The legacy chain has no session-level record; its final ids are
    # covered by the byte-identity check below and its per-step
    # reports by the report comparison at the end.

    # Serialized bytes: identical for every input-order path.  The
    # greedy plan may reorder components (different merge order), but
    # its ids/mappings/provenance matched above.
    if path != "greedy":
        reference_xml = (
            ref["tree_xml"] if path.startswith("parallel") else ref["fold_xml"]
        )
        assert xml == reference_xml

    # Step records: scheduling must not leak into the record.
    if path.startswith("parallel"):
        serial_steps = ref["tree"].steps
        assert [s.index for s in result.steps] == [
            s.index for s in serial_steps
        ]
        assert [(s.left, s.right) for s in result.steps] == [
            (s.left, s.right) for s in serial_steps
        ]
        for parallel_step, serial_step in zip(result.steps, serial_steps):
            assert _report_record(parallel_step.report) == _report_record(
                serial_step.report
            )
    if path == "legacy":
        assert len(step_reports) == len(ref["fold_reports"])
        for legacy_report, fold_report in zip(
            step_reports, ref["fold_reports"]
        ):
            assert _report_record(legacy_report) == _report_record(fold_report)


def _report_record(report):
    """The run-invariant content of one step's merge report."""
    return (
        sorted(str(d) for d in report.duplicates),
        report.total_added,
        dict(report.renamed),
        dict(report.mappings),
        sorted(str(c) for c in report.conflicts),
    )


@pytest.mark.parametrize("corpus_name", ["chain", "curated"])
@pytest.mark.parametrize(
    "shards,workers,backend",
    [(2, 1, "thread"), (5, 1, "thread"), (2, 3, "thread"), (2, 2, "process")],
)
def test_sharded_sweep_conformance(
    corpus_name, shards, workers, backend, corpora, tmp_path
):
    """The sweep path of the matrix: any shard layout and fanout
    unions back to the unsharded engine, field for field."""
    models = corpora[corpus_name]
    reference = match_all(models)
    parts = [
        match_all_sharded(
            models,
            shards=shards,
            shard_id=shard_id,
            workers=workers,
            backend=backend,
            store=tmp_path / "artifacts",
        )
        for shard_id in range(shards)
    ]
    merged = MatchMatrix.union(parts)
    assert [o.key() for o in merged.outcomes] == [
        o.key() for o in reference.outcomes
    ]
    # Second pass over the now-populated store: every per-model
    # artifact — including the canonical pattern tables that seed the
    # pair engine's PatternCache — rehydrates from disk instead of
    # being computed, and the outcomes must not move.
    rehydrated = [
        match_all_sharded(
            models,
            shards=shards,
            shard_id=shard_id,
            workers=workers,
            backend=backend,
            store=tmp_path / "artifacts",
        )
        for shard_id in range(shards)
    ]
    assert [o.key() for o in MatchMatrix.union(rehydrated).outcomes] == [
        o.key() for o in reference.outcomes
    ]


# ---------------------------------------------------------------------------
# Seventh path: the prebuilt-index sweep
# ---------------------------------------------------------------------------


def _deterministic_csv(matrix) -> str:
    handle = io.StringIO()
    write_outcomes(handle, matrix.outcomes, deterministic=True)
    return handle.getvalue()


@pytest.mark.parametrize("corpus_name", ["chain", "curated"])
def test_prebuilt_index_sweep_conformance(corpus_name, corpora, tmp_path):
    """Prebuilt per-model phase indexes (the default engine) must be
    byte-identical to the fresh-index sweep — with indexes built in
    memory, rehydrated from a store, and rehydrated from a store whose
    entries predate the index artifact (format 2)."""
    models = corpora[corpus_name]
    fresh = _deterministic_csv(match_all(models, prebuilt_indexes=False))

    assert _deterministic_csv(match_all(models)) == fresh

    # Store-backed pass: rows are spilled on the first sweep and
    # rehydrated (pickle round-trip included) on the second.
    store_dir = tmp_path / "artifacts"
    assert _deterministic_csv(match_all(models, store=store_dir)) == fresh
    assert _deterministic_csv(match_all(models, store=store_dir)) == fresh

    # Format-2 pass: entries carry everything *except* index rows, as
    # written before store format 3.  They must rehydrate (computing
    # the index set lazily in the engine), not read as misses — and
    # the outcomes must not move.
    format2_dir = tmp_path / "format2"
    store = ArtifactStore(format2_dir)
    for model in models:
        artifacts = compute_artifacts(model, with_indexes=False)
        del artifacts.indexes  # the field did not exist in format 2
        path = store.path_for(model_digest(model))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps({"format": 2, "artifacts": artifacts})
        )
    before = len(store)
    assert _deterministic_csv(match_all(models, store=format2_dir)) == fresh
    # Every model rehydrated (no entry was recomputed/overwritten as
    # a miss would force).
    assert len(store) == before


# ---------------------------------------------------------------------------
# Eighth path: the signature prescreen
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("corpus_name", ["chain", "curated"])
def test_prescreen_sweep_conformance(corpus_name, corpora, tmp_path):
    """The prescreened sweep — trivial pairs pruned by the twin
    congruence check and their rows synthesized from signatures — must
    be byte-identical to the full sweep: in memory, with signatures
    rehydrated from a store, and as one shared ``Prescreen`` instance
    driving every shard of a sharded sweep."""
    models = corpora[corpus_name]
    full = _deterministic_csv(match_all(models))

    screened = match_all(models, prescreen=True)
    assert _deterministic_csv(screened) == full

    # Store-backed pass: signatures spill as format-4 artifacts on the
    # first sweep and rehydrate (pickle round-trip included) on the
    # second.
    store_dir = tmp_path / "artifacts"
    assert (
        _deterministic_csv(match_all(models, prescreen=True, store=store_dir))
        == full
    )
    assert (
        _deterministic_csv(match_all(models, prescreen=True, store=store_dir))
        == full
    )

    # One Prescreen shared across every shard of a sharded sweep: the
    # pair matrix is scored once, each shard prunes its own slice, the
    # union equals the unsharded full sweep.
    screen = Prescreen.build(models, ComposeOptions())
    parts = [
        match_all_sharded(
            models, shards=3, shard_id=shard_id, prescreen=screen
        )
        for shard_id in range(3)
    ]
    merged = MatchMatrix.union(parts)
    assert _deterministic_csv(merged) == full
    assert merged.pruned == screened.pruned


def test_prescreen_with_pre_signature_store_entries(corpora, tmp_path):
    """Store format 4 added the model signature as a pure addition:
    format-3 entries (index rows but no ``signature``/``id_sets``
    fields) must rehydrate as hits with those fields ``None`` — the
    prescreen recomputes signatures locally — and the screened sweep
    must stay byte-identical without rewriting any entry."""
    models = corpora["chain"]
    full = _deterministic_csv(match_all(models))
    store_dir = tmp_path / "format3"
    store = ArtifactStore(store_dir)
    for model in models:
        artifacts = compute_artifacts(model, with_signature=False)
        del artifacts.signature  # the fields did not exist in format 3
        del artifacts.id_sets
        path = store.path_for(model_digest(model))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"format": 3, "artifacts": artifacts}))
    before = len(store)
    assert (
        _deterministic_csv(match_all(models, prescreen=True, store=store_dir))
        == full
    )
    assert len(store) == before


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_prescreen_never_prunes_a_matching_pair(seed):
    """The safety property behind the eighth path, stated directly:
    on any BioModels-like corpus, a pair the prescreen prunes is one
    the full matcher composes with zero renames and zero conflicts,
    uniting exactly the twins the signatures counted — so pruning can
    never hide a pair the full matcher would have matched
    non-trivially."""
    models = generate_corpus(count=4, seed=seed)
    screen = Prescreen.build(models, ComposeOptions())
    full = match_all(models)
    by_pair = {(o.i, o.j): o for o in full.outcomes}
    pruned_pairs = [
        pair for pair in by_pair if screen.should_prune(*pair)
    ]
    for i, j in pruned_pairs:
        outcome = by_pair[(i, j)]
        assert (outcome.renamed, outcome.conflicts) == (0, 0), (i, j)
        assert (
            outcome.united,
            outcome.added,
            outcome.renamed,
            outcome.conflicts,
        ) == screen.synthesized_counts(i, j), (i, j)
    # And the end-to-end restatement: the screened sweep's
    # run-invariant rows equal the full sweep's, pair for pair.
    screened = match_all(models, prescreen=screen)
    assert [o.key() for o in screened.outcomes] == [
        o.key() for o in full.outcomes
    ]
    assert screened.pruned == len(pruned_pairs)


# ---------------------------------------------------------------------------
# Ninth path: the digest-shipped worker boundary
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("corpus_name", ["chain", "curated"])
def test_digest_shipped_sweep_conformance(corpus_name, corpora, tmp_path):
    """The digest-shipped process pool — workers receive a ``(label,
    digest)`` manifest and rehydrate each model from the artifact
    store's format-5 SBML blob — must be byte-identical to the
    in-memory sweep on the deterministic CSV: populating the store,
    rehydrating from it, through the ``digest_shipping=False`` escape
    hatch, through the automatic temp store, and as a sharded union."""
    models = corpora[corpus_name]
    reference = _deterministic_csv(match_all(models))
    store_dir = tmp_path / "artifacts"

    # Plain pool over the manifest boundary, populating the store...
    assert (
        _deterministic_csv(
            match_all(models, workers=2, backend="process", store=store_dir)
        )
        == reference
    )
    # ...and a second pass rehydrating every artifact from it.
    assert (
        _deterministic_csv(
            match_all(models, workers=2, backend="process", store=store_dir)
        )
        == reference
    )
    # The escape hatch (--no-digest-shipping): the pickled-corpus
    # boundary must agree with the manifest boundary.
    assert (
        _deterministic_csv(
            match_all(
                models,
                workers=2,
                backend="process",
                store=store_dir,
                digest_shipping=False,
            )
        )
        == reference
    )
    # No explicit store: the sweep ships digests through a transient
    # temp store it cleans up afterwards.
    assert (
        _deterministic_csv(match_all(models, workers=2, backend="process"))
        == reference
    )
    # Sharded digest-shipped union.
    parts = [
        match_all_sharded(
            models,
            shards=2,
            shard_id=shard_id,
            workers=2,
            backend="process",
            store=store_dir,
        )
        for shard_id in range(2)
    ]
    assert _deterministic_csv(MatchMatrix.union(parts)) == reference


def test_digest_shipped_supervised_sweep_conformance(corpora, tmp_path):
    """The supervised half of the ninth path: the coordinator builds
    the manifest once, workers rehydrate from the sweep's own store,
    and the shard-CSV union is byte-identical to the in-memory
    unsharded sweep."""
    from repro.core.coordinator import CoordinatorConfig, SweepCoordinator

    models = corpora["curated"]
    reference = _deterministic_csv(match_all(models))
    coordinator = SweepCoordinator(
        models,
        None,
        shards=2,
        out_dir=tmp_path / "sweep",
        fingerprint=corpus_fingerprint(models, extra=("shards", 2)),
        config=CoordinatorConfig(
            workers=2, worker_timeout=15.0, poll_interval=0.05
        ),
        progress=False,
    )
    report = coordinator.run()
    assert report.exit_code == 0
    # The manifest boundary was live — workers got digests, not models.
    assert coordinator.manifest is not None
    assert coordinator.manifest.fingerprint == corpus_fingerprint(models)
    merged = MatchMatrix.union(report.matrices)
    assert _deterministic_csv(merged) == reference


def test_remote_supervised_sweep_conformance(corpora, tmp_path):
    """The tenth path: a mixed local + remote supervised sweep — one
    local pipe worker plus two loopback socket workers, one remote
    chaos-killed mid-shard (its shard stolen and retried) and one pair
    quarantined as poison — must still merge to a CSV byte-identical
    to the unsharded in-memory sweep minus exactly the quarantined
    pair.  Socket framing, the handshake, digest-fetch rehydration and
    steal/retry/quarantine are all on the wire here; none of them may
    leak into the answer."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    from repro.core import chaos
    from repro.core.coordinator import (
        EXIT_QUARANTINED,
        CoordinatorConfig,
        SweepCoordinator,
    )

    models = corpora["curated"]
    poison = (1, 2)
    reference = match_all(models)
    expected = io.StringIO()
    write_outcomes(
        expected,
        [o for o in reference.outcomes if (o.i, o.j) != poison],
        deterministic=True,
    )

    out = tmp_path / "sweep"
    out.mkdir()
    spec = chaos.ChaosSpec(
        out,
        faults=[
            # Hold the local worker on its first shard so the remote
            # workers are guaranteed a share of the sweep.
            chaos.Fault(
                site="chunk-start",
                action="stall",
                match={"worker": "w1"},
                stall_seconds=4.0,
                times=1,
                key="hold-local",
            ),
            # SIGKILL the first remote worker as it starts a shard.
            chaos.Fault(
                site="chunk-start",
                action="kill",
                match={"worker": "r1"},
                times=1,
                key="kill-remote",
            ),
            # And one poison pair: fails on every attempt, every
            # worker, until quarantined.
            chaos.Fault(
                site="pair-start",
                action="raise",
                match={"i": poison[0], "j": poison[1]},
                times=None,
                key="poison",
            ),
        ],
    )
    coordinator = SweepCoordinator(
        models,
        None,
        shards=3,
        out_dir=out,
        fingerprint=corpus_fingerprint(models, extra=("shards", 3)),
        config=CoordinatorConfig(
            workers=1,
            worker_timeout=15.0,
            poll_interval=0.05,
            backoff_base=0.05,
            backoff_cap=0.2,
        ),
        progress=False,
        listen=("127.0.0.1", 0),
        local_workers=1,
    )
    _, port = coordinator.listen_address
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        f"127.0.0.1:{port}",
    ]
    with chaos.active(spec):
        # Snapshot the environment *inside* the armed block: active()
        # published REPRO_CHAOS, which arms the remote workers too.
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"),
        )
        procs = [subprocess.Popen(argv, env=env) for _ in range(2)]
        try:
            report = coordinator.run()
        finally:
            codes = []
            for proc in procs:
                try:
                    codes.append(proc.wait(timeout=60))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    codes.append(proc.wait())
    assert report.exit_code == EXIT_QUARANTINED
    # The killed remote had a shard leased — it was stolen and retried.
    assert report.steals >= 1
    assert [(e["i"], e["j"]) for e in report.quarantined] == [poison]
    # One remote died by SIGKILL, the other stopped cleanly.
    assert sorted(codes) == [-9, 0]
    merged = MatchMatrix.union(report.matrices)
    assert _deterministic_csv(merged) == expected.getvalue()


@given(
    seed=st.integers(min_value=0, max_value=1000),
    shards=st.integers(min_value=1, max_value=3),
    workers=st.integers(min_value=2, max_value=3),
)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_digest_shipped_invariant_over_shards_and_workers(
    seed, shards, workers, tmp_path_factory
):
    """Shard layout and worker count must not leak into the
    digest-shipped sweep: for any BioModels-like corpus, the union of
    any sharded digest-shipped process sweep is byte-identical to the
    serial in-memory sweep."""
    models = generate_corpus(count=4, seed=seed)
    reference = _deterministic_csv(match_all(models))
    store_dir = tmp_path_factory.mktemp("digest-shipped-store")
    parts = [
        match_all_sharded(
            models,
            shards=shards,
            shard_id=shard_id,
            workers=workers,
            backend="process",
            store=store_dir,
        )
        for shard_id in range(shards)
    ]
    assert _deterministic_csv(MatchMatrix.union(parts)) == reference


# ---------------------------------------------------------------------------
# OverlayIndex vs fresh build: first-registration-wins invariance
# ---------------------------------------------------------------------------


def _model_rows(seed: int, n_nodes: int):
    """Real index rows — every phase's (keys, position) table — from a
    BioModels-like generated model, flattened to key lists."""
    rng = np.random.default_rng(seed)
    model = generate_model(seed, n_nodes, rng)
    index_set = ModelIndexSet.build(model)
    return [
        list(keys)
        for rows in index_set.rows.values()
        for _, keys in rows
        if keys
    ]


@st.composite
def overlay_runs(draw):
    seed = draw(st.integers(min_value=0, max_value=40))
    n_nodes = draw(st.integers(min_value=1, max_value=10))
    key_lists = _model_rows(seed, n_nodes)
    # Where the base freezes: everything before the split is the
    # prebuilt artifact, everything after arrives mid-merge through
    # the overlay's copy-on-write delta.
    split = draw(st.integers(min_value=0, max_value=len(key_lists)))
    # Interleave the post-freeze adds with probes of arbitrary keys
    # (drawn from the model's real keys plus misses).
    probe_pool = [key for keys in key_lists for key in keys] + ["id:<none>"]
    operations = []
    for position in range(split, len(key_lists)):
        operations.append(("add", key_lists[position]))
    probes = draw(
        st.lists(
            st.lists(st.sampled_from(probe_pool), min_size=1, max_size=3),
            max_size=12,
        )
    )
    for probe in probes:
        operations.append(("find", probe))
    operations = draw(st.permutations(operations))
    return key_lists[:split], operations


@given(overlay_runs())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_overlay_matches_fresh_index_on_model_rows(run):
    """For any freeze point and any interleaving of adds and probes,
    an OverlayIndex over a frozen base returns exactly what one
    freshly built index (base adds, then overlay adds, in order)
    returns — on every strategy, with real per-model index keys."""
    base_rows, operations = run
    for strategy in ("hash", "linear", "sorted"):
        base = make_index(strategy)
        fresh = make_index(strategy)
        serial = 0
        for keys in base_rows:
            base.add(keys, serial)
            fresh.add(keys, serial)
            serial += 1
        base.freeze()
        overlay = OverlayIndex(base, strategy)
        for action, keys in operations:
            if action == "add":
                overlay.add(keys, serial)
                fresh.add(keys, serial)
                serial += 1
            else:
                assert overlay.find(keys) == fresh.find(keys), (
                    strategy,
                    keys,
                )
        assert len(overlay) == len(fresh)
