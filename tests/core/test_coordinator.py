"""The fault-tolerant sweep coordinator.

Every scenario here is driven deterministically by the chaos harness
(:mod:`repro.core.chaos`) — worker deaths, poison pairs and stalls
happen on exact pairs with exact budgets, so these tests replay
identically on every run.
"""

import json

import pytest

from repro.core import chaos
from repro.core.artifact_store import corpus_fingerprint
from repro.core.coordinator import (
    EXIT_QUARANTINED,
    CoordinatorConfig,
    CoordinatorError,
    Quarantine,
    SweepCoordinator,
)
from repro.core.match_all import MatchMatrix, match_all, read_outcomes_csv
from repro.core.shards import SweepCheckpoint, SweepStateError
from repro.corpus.curated import (
    drug_inhibition,
    glycolysis_lower,
    glycolysis_upper,
    mapk_cascade,
)

SHARDS = 3


@pytest.fixture(scope="module")
def corpus():
    return [
        glycolysis_upper(),
        glycolysis_lower(),
        mapk_cascade(),
        drug_inhibition(),
    ]


@pytest.fixture(scope="module")
def fingerprint(corpus):
    return corpus_fingerprint(corpus, extra=("shards", SHARDS))


@pytest.fixture(scope="module")
def reference_keys(corpus):
    """Run-invariant rows of the plain unsharded sweep."""
    matrix = match_all(corpus)
    return {(o.i, o.j): o.key() for o in matrix.outcomes}


def _coordinator(corpus, fingerprint, out_dir, **overrides):
    defaults = dict(
        workers=2,
        worker_timeout=15.0,
        poll_interval=0.05,
        backoff_base=0.05,
        backoff_cap=0.2,
    )
    defaults.update(overrides)
    return SweepCoordinator(
        corpus,
        None,
        shards=SHARDS,
        out_dir=out_dir,
        fingerprint=fingerprint,
        config=CoordinatorConfig(**defaults),
        progress=False,
    )


def _computed_keys(report):
    return {
        (o.i, o.j): o.key()
        for matrix in report.matrices
        for o in matrix.outcomes
    }


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoordinatorConfig(workers=0)
        with pytest.raises(ValueError):
            CoordinatorConfig(worker_timeout=0)
        with pytest.raises(ValueError):
            CoordinatorConfig(max_retries=-1)
        with pytest.raises(ValueError):
            CoordinatorConfig(poison_threshold=0)

    def test_derived_knobs(self):
        config = CoordinatorConfig(worker_timeout=8.0)
        assert config.effective_heartbeat == pytest.approx(2.0)
        assert config.effective_lease_ttl == pytest.approx(32.0)
        explicit = CoordinatorConfig(
            heartbeat_interval=0.5, lease_ttl=10.0
        )
        assert explicit.effective_heartbeat == 0.5
        assert explicit.effective_lease_ttl == 10.0


class TestHappyPath:
    def test_matches_unsupervised_sweep(
        self, corpus, fingerprint, reference_keys, tmp_path
    ):
        report = _coordinator(corpus, fingerprint, tmp_path / "sweep").run()
        assert report.exit_code == 0
        assert report.retries == 0 and report.steals == 0
        assert _computed_keys(report) == reference_keys
        # Every shard is journaled and its CSV exists.
        checkpoint = SweepCheckpoint.open(tmp_path / "sweep")
        assert checkpoint.missing_shards() == []
        assert checkpoint.leases == {}

    def test_resume_skips_everything(
        self, corpus, fingerprint, tmp_path
    ):
        out = tmp_path / "sweep"
        _coordinator(corpus, fingerprint, out).run()
        coordinator = _coordinator(corpus, fingerprint, out)
        coordinator.resume = True
        report = coordinator.run()
        assert report.matrices == []  # nothing recomputed
        assert report.exit_code == 0


class TestWorkerDeathAndStealing:
    def test_killed_worker_shard_is_stolen_and_completes(
        self, corpus, fingerprint, reference_keys, tmp_path
    ):
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="pair-start",
                    action="kill",
                    match={"i": 0, "j": 1},
                    times=1,
                    key="kill-once",
                )
            ],
        )
        with chaos.active(spec):
            report = _coordinator(corpus, fingerprint, out).run()
        assert report.exit_code == 0
        assert report.steals == 1
        assert report.retries >= 1
        # One death is one strike — not enough for quarantine — and
        # the retry recomputed the pair: full coverage, identical rows.
        assert not report.quarantined
        assert _computed_keys(report) == reference_keys

    def test_strike_attributed_to_running_pair(
        self, corpus, fingerprint, tmp_path
    ):
        # Kill the worker twice on the same pair: attribution turns
        # two deaths into quarantine at the default threshold.
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="pair-start",
                    action="kill",
                    match={"i": 2, "j": 3},
                    times=2,
                    key="kill-twice",
                )
            ],
        )
        with chaos.active(spec):
            report = _coordinator(corpus, fingerprint, out).run()
        assert report.exit_code == EXIT_QUARANTINED
        assert [(e["i"], e["j"]) for e in report.quarantined] == [(2, 3)]
        entry = report.quarantined[0]
        assert "died" in entry["error"]
        assert entry["strikes"] == 2


class TestPoisonQuarantine:
    def test_poison_pair_quarantined_and_rows_absent(
        self, corpus, fingerprint, reference_keys, tmp_path
    ):
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="pair-start",
                    action="raise",
                    match={"i": 1, "j": 2},
                    times=None,
                    key="poison",
                )
            ],
        )
        with chaos.active(spec):
            report = _coordinator(corpus, fingerprint, out).run()
        assert report.exit_code == EXIT_QUARANTINED
        expected = dict(reference_keys)
        del expected[(1, 2)]
        assert _computed_keys(report) == expected
        # The captured traceback is real: it names the chaos fault.
        payload = json.loads((out / "quarantine.json").read_text())
        (entry,) = payload["pairs"]
        assert entry["i"] == 1 and entry["j"] == 2
        assert "ChaosError" in entry["error"]
        assert "Traceback" in entry["error"]
        # Quarantined rows are absent from the shard CSVs.
        checkpoint = SweepCheckpoint.open(out)
        for shard_id, info in checkpoint.completed.items():
            rows = read_outcomes_csv(out / str(info["file"]))
            assert (1, 2) not in {(o.i, o.j) for o in rows}
        # The per-shard matrix reports the quarantine in its summary.
        hit = [m for m in report.matrices if m.quarantined]
        assert len(hit) == 1 and "QUARANTINED" in hit[0].summary()

    def test_quarantine_survives_resume(
        self, corpus, fingerprint, tmp_path
    ):
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="pair-start",
                    action="raise",
                    match={"i": 1, "j": 2},
                    times=None,
                    key="poison",
                )
            ],
        )
        with chaos.active(spec):
            first = _coordinator(corpus, fingerprint, out).run()
        assert first.exit_code == EXIT_QUARANTINED
        # A later resume (chaos disarmed: the bug is "fixed") still
        # reports the standing quarantine and recomputes nothing.
        coordinator = _coordinator(corpus, fingerprint, out)
        coordinator.resume = True
        second = coordinator.run()
        assert second.exit_code == EXIT_QUARANTINED
        assert [(e["i"], e["j"]) for e in second.quarantined] == [(1, 2)]
        assert second.matrices == []


class TestRetryBudget:
    def test_exhausted_budget_raises(self, corpus, fingerprint, tmp_path):
        # A pair that always errors but a threshold too high to ever
        # quarantine: the shard burns its whole budget and the sweep
        # aborts instead of looping forever.
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="pair-start",
                    action="raise",
                    match={"i": 1, "j": 2},
                    times=None,
                    key="poison",
                )
            ],
        )
        with chaos.active(spec):
            coordinator = _coordinator(
                corpus,
                fingerprint,
                out,
                max_retries=1,
                poison_threshold=100,
            )
            with pytest.raises(CoordinatorError) as excinfo:
                coordinator.run()
        assert "max_retries" in str(excinfo.value)


class TestBackoff:
    def test_deterministic_jitter(self, corpus, fingerprint, tmp_path):
        one = _coordinator(corpus, fingerprint, tmp_path / "a")
        two = _coordinator(corpus, fingerprint, tmp_path / "b")
        delays_one = [one._backoff(1, n) for n in range(1, 6)]
        delays_two = [two._backoff(1, n) for n in range(1, 6)]
        assert delays_one == delays_two
        # Exponential growth up to the cap (jitter ≤ 25 % here).
        assert delays_one[0] < delays_one[1] < delays_one[2]
        cap = one.config.backoff_cap * (1 + one.config.backoff_jitter)
        assert all(delay <= cap for delay in delays_one)


class TestQuarantineSidecar:
    def test_load_missing_is_empty(self, tmp_path):
        quarantine = Quarantine.load(tmp_path)
        assert len(quarantine) == 0

    def test_add_save_load_round_trip(self, tmp_path):
        quarantine = Quarantine(tmp_path)
        quarantine.add(1, 3, left="a", right="b", strikes=2, error="boom")
        loaded = Quarantine.load(tmp_path)
        assert (1, 3) in loaded
        assert loaded.entries[(1, 3)]["error"] == "boom"
        assert loaded.pairs() == {(1, 3)}

    def test_unreadable_sidecar_raises_cleanly(self, tmp_path):
        (tmp_path / Quarantine.FILENAME).write_text("{not json")
        with pytest.raises(SweepStateError):
            Quarantine.load(tmp_path)


class TestMonotonicLiveness:
    def test_wall_clock_jump_neither_kills_nor_revives(
        self, corpus, fingerprint, tmp_path, monkeypatch
    ):
        """Worker liveness rides the monotonic clock: stepping the
        wall clock (NTP correction, VM resume, DST misconfig) by hours
        in either direction must not change which workers look alive.
        The two clocks are patched independently to prove liveness
        never reads ``time.time``."""
        import time as _time

        from repro.core import coordinator as coord_mod

        class _Conn:
            def close(self):
                pass

        coordinator = _coordinator(corpus, fingerprint, tmp_path / "sweep")
        worker = coord_mod._WorkerHandle(
            "r1", None, _Conn(), remote=True, host="box-b"
        )
        coordinator._workers["r1"] = worker

        real_time = _time.time
        # Forward wall jump of ~3 hours: a worker heartbeating
        # normally must NOT be declared stalled and killed.
        monkeypatch.setattr(
            coord_mod.time, "time", lambda: real_time() + 10_800.0
        )
        coordinator._check_timeouts(coord_mod.time.monotonic())
        assert worker.kill_reason is None
        assert not worker.eof

        # Backward wall jump: a genuinely stale worker (no heartbeat
        # for longer than the timeout, on the monotonic clock) must
        # NOT be revived by the clock running "earlier" again.
        monkeypatch.setattr(
            coord_mod.time, "time", lambda: real_time() - 10_800.0
        )
        worker.last_seen = (
            _time.monotonic() - coordinator.config.worker_timeout - 1.0
        )
        coordinator._check_timeouts(coord_mod.time.monotonic())
        assert worker.kill_reason is not None
        assert "no heartbeat" in worker.kill_reason
        assert worker.eof  # remote reclamation = closed channel


class _RecordingConn:
    def __init__(self):
        self.sent = []

    def send(self, obj):
        self.sent.append(obj)

    def close(self):
        pass


class _StubbornProcess:
    """A worker process that ignores escalation steps until ``dies_on``
    (one of "stop", "terminate", "kill", or None for unkillable)."""

    def __init__(self, dies_on):
        self.dies_on = dies_on
        self.calls = []
        self.pid = 4242
        self._alive = True

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        self.calls.append("join")

    def terminate(self):
        self.calls.append("terminate")
        if self.dies_on == "terminate":
            self._alive = False

    def kill(self):
        self.calls.append("kill")
        if self.dies_on == "kill":
            self._alive = False


class TestShutdownEscalation:
    def _with_worker(self, corpus, fingerprint, tmp_path, process):
        from repro.core import coordinator as coord_mod

        coordinator = _coordinator(corpus, fingerprint, tmp_path / "sweep")
        coordinator.progress = True
        conn = _RecordingConn()
        handle = coord_mod._WorkerHandle("w1", process, conn)
        coordinator._workers["w1"] = handle
        return coordinator, conn

    def test_escalates_and_rejoins_after_kill(
        self, corpus, fingerprint, tmp_path, capsys
    ):
        # The worker shrugs off stop AND terminate; only kill lands.
        # The coordinator must re-join after the kill (a kill without
        # a final join leaves a zombie) and not cry zombie here.
        process = _StubbornProcess(dies_on="kill")
        coordinator, conn = self._with_worker(
            corpus, fingerprint, tmp_path, process
        )
        coordinator._shutdown_workers()
        assert ("stop",) in conn.sent
        assert process.calls == [
            "join", "terminate", "join", "kill", "join"
        ]
        err = capsys.readouterr().err
        assert "ignored stop; terminating" in err
        assert "survived terminate; killing" in err
        assert "UNREAPED" not in err
        assert coordinator._workers == {}

    def test_unkillable_worker_is_reported_with_pid(
        self, corpus, fingerprint, tmp_path, capsys
    ):
        process = _StubbornProcess(dies_on=None)
        coordinator, _ = self._with_worker(
            corpus, fingerprint, tmp_path, process
        )
        coordinator._shutdown_workers()
        assert process.calls == [
            "join", "terminate", "join", "kill", "join"
        ]
        err = capsys.readouterr().err
        assert "UNREAPED" in err
        assert "4242" in err

    def test_chaos_worker_ignoring_stop_is_terminated(
        self, corpus, fingerprint, reference_keys, tmp_path, capsys
    ):
        # Integration: a real worker stalls inside its stop handler
        # (the chaos "worker-stop" site).  The sweep itself finished,
        # so this must cost one escalation, not a hang or a zombie.
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="worker-stop",
                    action="stall",
                    stall_seconds=30.0,
                    times=1,
                    key="ignore-stop",
                )
            ],
        )
        with chaos.active(spec):
            coordinator = _coordinator(corpus, fingerprint, out, workers=1)
            coordinator.progress = True
            report = coordinator.run()
        assert report.exit_code == 0
        assert _computed_keys(report) == reference_keys
        err = capsys.readouterr().err
        assert "ignored stop; terminating" in err
        assert coordinator._workers == {}
