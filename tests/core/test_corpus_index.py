"""The persistent corpus search index.

The index is the on-disk face of the prescreen: segmented,
memory-mapped posting lists over signature key hashes, incremental
add/remove/evict, and a query path whose classifications must agree
with the in-memory :class:`~repro.core.signature.Prescreen` — and,
through it, with the full matcher (pinned byte-for-byte in the
conformance matrix and the CLI tests).  Segment/tail mixing,
tombstones, compaction and crash recovery live in
``test_corpus_segments.py``.
"""

import pickle

import numpy as np
import pytest

from repro import ComposeOptions, ModelBuilder
from repro.core.artifact_store import ArtifactStore, model_digest
from repro.core.corpus_index import CorpusIndex
from repro.core.match_all import match_query
from repro.core.options import SEMANTICS_NONE
from repro.core.signature import ModelSignature, Prescreen
from repro.corpus import generate_corpus


def _model(model_id="m", species=("A", "B"), value=0.5):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder = builder.species(name, 1.0)
    builder = builder.parameter("k", value)
    builder = builder.mass_action(
        f"r_{model_id}", [species[0]], [species[-1]], "k"
    )
    return builder.build()


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(count=10, seed=3)


@pytest.fixture
def index(corpus):
    built = CorpusIndex()
    for position, model in enumerate(corpus):
        built.add(model, label=f"m{position:02d}")
    return built


class TestMaintenance:
    def test_add_and_lookup(self, index, corpus):
        assert len(index) == len(corpus)
        digest = model_digest(corpus[0])
        assert digest in index
        entry = index.get(digest)
        assert entry.label == "m00"
        assert digest in index.digests()

    def test_readd_refreshes_not_duplicates(self, index, corpus):
        before = len(index)
        digest = index.add(corpus[0], label="renamed", path="/tmp/x.xml")
        assert len(index) == before
        entry = index.get(digest)
        assert entry.label == "renamed"
        assert entry.path == "/tmp/x.xml"
        # The refresh bumped the LRU clock: this entry is now newest.
        assert entry.sequence == max(
            index.get(other).sequence for other in index.digests()
        )

    def test_remove_drops_from_queries(self, corpus):
        index = CorpusIndex()
        digests = [index.add(model) for model in corpus]
        assert index.remove(digests[0])
        assert not index.remove(digests[0])
        assert digests[0] not in index
        hits = index.query(ModelSignature.build(corpus[0]))
        assert digests[0] not in {hit.digest for hit in hits}
        assert [hit.position for hit in hits] == list(
            range(len(corpus) - 1)
        )
        near = index.nearest(ModelSignature.build(corpus[0]))
        assert digests[0] not in {hit.digest for hit in near}

    def test_evict_is_lru(self, corpus):
        index = CorpusIndex()
        digests = [index.add(model) for model in corpus]
        index.touch(digests[0])
        removed = index.evict(len(corpus) - 3)
        # Oldest-first, skipping the touched head entry.
        assert removed == digests[1:4]
        assert len(index) == len(corpus) - 3
        assert digests[0] in index

    def test_evict_rejects_negative(self, index):
        with pytest.raises(ValueError):
            index.evict(-1)

    def test_signature_options_mismatch_rejected(self):
        index = CorpusIndex()
        foreign = ModelSignature.build(
            _model(), ComposeOptions(semantics=SEMANTICS_NONE)
        )
        with pytest.raises(ValueError):
            index.add(_model(), signature=foreign)

    def test_store_rehydrated_signature_is_used(self, corpus, tmp_path):
        store = ArtifactStore(tmp_path)
        artifacts = store.get_or_compute(corpus[0])
        assert artifacts.signature is not None
        index = CorpusIndex()
        digest = index.add(corpus[0], store=store)
        adopted = index.get(digest).signature
        # The stored (pickle round-tripped) signature was adopted, not
        # rebuilt: identical vectors, straight from the stored entry.
        assert adopted.options_key == artifacts.signature.options_key
        assert np.array_equal(
            adopted.key_hashes, artifacts.signature.key_hashes
        )
        assert np.array_equal(
            adopted.key_fingerprints, artifacts.signature.key_fingerprints
        )

    def test_add_all_counts(self, corpus):
        index = CorpusIndex()
        added, refreshed = index.add_all(
            corpus, labels=[f"m{i:02d}" for i in range(len(corpus))]
        )
        assert (added, refreshed) == (len(corpus), 0)
        added, refreshed = index.add_all(corpus[:4])
        assert (added, refreshed) == (0, 4)

    def test_add_all_validates_lengths(self, corpus):
        index = CorpusIndex()
        with pytest.raises(ValueError):
            index.add_all(corpus, labels=["just-one"])


class TestQuery:
    def test_agrees_with_prescreen(self, index, corpus):
        screen = Prescreen.build(corpus)
        for position, model in enumerate(corpus):
            signature = ModelSignature.build(model)
            hits = index.query(signature)
            assert [hit.position for hit in hits] == list(range(len(corpus)))
            # blocked == "must run the full matcher", exactly the
            # prescreen's survivor vector for this query.
            assert np.array_equal(
                np.array([hit.blocked for hit in hits]),
                screen.query_survivors(signature),
            )
            scores = screen.query_scores(signature)
            assert [hit.score for hit in hits] == list(scores)
            self_hit = hits[position]
            assert self_hit.score == len(signature.key_hashes)

    def test_classification_matches_full_matcher(self, index, corpus):
        """A non-blocked hit's synthesized counts equal the full
        matcher's outcome for that pair — the index-level restatement
        of the eighth conformance path."""
        query = corpus[2]
        signature = ModelSignature.build(query)
        hits = index.query(signature)
        matrix = match_query(query, corpus)
        for hit, outcome in zip(hits, matrix.outcomes):
            if hit.blocked:
                continue
            assert hit.synthesized_counts(signature.component_count) == (
                outcome.united,
                outcome.added,
                outcome.renamed,
                outcome.conflicts,
            )
        assert any(not hit.blocked for hit in hits)
        assert any(hit.blocked for hit in hits)

    def test_rank_orders_blocked_first_by_score(self, index, corpus):
        hits = index.query(ModelSignature.build(corpus[4]))
        ranked = index.rank(hits)
        blocked = [hit for hit in ranked if hit.blocked]
        pruned = [hit for hit in ranked if not hit.blocked]
        assert ranked == blocked + pruned
        scores = [hit.score for hit in blocked]
        assert scores == sorted(scores, reverse=True)
        positions = [hit.position for hit in pruned]
        assert positions == sorted(positions)

    def test_query_options_mismatch_rejected(self, index):
        foreign = ModelSignature.build(
            _model(), ComposeOptions(semantics=SEMANTICS_NONE)
        )
        with pytest.raises(ValueError):
            index.query(foreign)

    def test_nearest_is_scale_lookup_only(self, index, corpus):
        hits = index.nearest(ModelSignature.build(corpus[0]), limit=3)
        assert 0 < len(hits) <= 3
        # Bucket evidence never claims a synthesizable outcome.
        assert all(not hit.blocked and hit.united == 0 for hit in hits)

    def test_none_semantics_gate(self, corpus):
        options = ComposeOptions(semantics=SEMANTICS_NONE)
        index = CorpusIndex(options)
        for model in corpus:
            index.add(model)
        hits = index.query(ModelSignature.build(corpus[0], options))
        # Under "none" twins rename instead of uniting: any overlap
        # blocks, and no union is ever synthesized.
        for hit in hits:
            assert hit.united == 0
            assert hit.blocked == (hit.score > 0)


class TestPersistence:
    def test_save_load_round_trip(self, index, corpus, tmp_path):
        path = tmp_path / "corpus.idx"
        index.save(path)
        loaded = CorpusIndex.load(path)
        assert len(loaded) == len(index)
        assert loaded.options_key == index.options_key
        signature = ModelSignature.build(corpus[5])
        assert [
            (hit.digest, hit.score, hit.blocked, hit.united)
            for hit in loaded.query(signature)
        ] == [
            (hit.digest, hit.score, hit.blocked, hit.united)
            for hit in index.query(signature)
        ]

    def test_incremental_update_survives_reload(self, index, corpus, tmp_path):
        path = tmp_path / "corpus.idx"
        index.save(path)
        loaded = CorpusIndex.load(path)
        extra = _model("extra", species=("Q", "R"))
        digest = loaded.add(extra)
        loaded.save(path)
        again = CorpusIndex.load(path)
        assert digest in again
        # The LRU clock keeps advancing across reloads.
        removed = again.evict(len(again) - 1)
        assert digest not in removed

    def test_old_monolithic_format_rejected(self, tmp_path):
        path = tmp_path / "corpus.idx"
        path.write_bytes(pickle.dumps({"format": 1}))
        with pytest.raises(ValueError, match="rebuild"):
            CorpusIndex.load(path)

    def test_foreign_manifest_format_rejected(self, tmp_path):
        path = tmp_path / "corpus.idx"
        path.mkdir()
        (path / "manifest.json").write_text('{"format": 99}\n')
        with pytest.raises(ValueError, match="format-2"):
            CorpusIndex.load(path)

    def test_save_layout_has_no_stragglers(self, index, tmp_path):
        path = tmp_path / "corpus.idx"
        index.save(path)
        assert sorted(entry.name for entry in path.iterdir()) == [
            "manifest.json",
            "options.pkl",
            "seg-000000",
        ]
        # A second save with an unchanged tail adds only the backup.
        index.save(path)
        assert sorted(entry.name for entry in path.iterdir()) == [
            "manifest.json",
            "manifest.json.bak",
            "options.pkl",
            "seg-000000",
        ]

    def test_save_refuses_relocation(self, index, tmp_path):
        index.save(tmp_path / "a.idx")
        with pytest.raises(ValueError, match="saves in place"):
            index.save(tmp_path / "b.idx")

    def test_save_onto_plain_file_rejected(self, index, tmp_path):
        path = tmp_path / "corpus.idx"
        path.write_bytes(b"not an index directory")
        with pytest.raises(ValueError):
            index.save(path)
