"""Segmented corpus index: equivalence, crash recovery, parallelism.

The segmented layout's contract is that *no* mix of sealed segments,
tail entries, tombstones, overrides and compactions may ever change a
query's answer: every sequence of maintenance operations must yield
queries byte-identical to a fresh monolithic (tail-only) index built
from the surviving models in the same insertion order.  A hypothesis
property drives random operation sequences against both; deterministic
batteries pin the interesting mixes; a chaos-harness test pins the
manifest's torn-write recovery; and the parallel build must be
indistinguishable from the serial one.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import chaos
from repro.core.artifact_store import ArtifactStore, model_digest
from repro.core.corpus_index import CorpusIndex
from repro.core.signature import ModelSignature, PackedSignatures
from repro.corpus import generate_corpus

POOL_SIZE = 8


@pytest.fixture(scope="module")
def pool():
    return generate_corpus(count=POOL_SIZE, seed=11)


@pytest.fixture(scope="module")
def signatures(pool):
    return [ModelSignature.build(model) for model in pool]


@pytest.fixture(scope="module")
def digests(pool):
    return [model_digest(model) for model in pool]


def _hit_tuples(index, signature):
    return [
        (
            hit.digest,
            hit.label,
            hit.position,
            hit.score,
            hit.blocked,
            hit.united,
            hit.component_count,
        )
        for hit in index.query(signature)
    ]


def _assert_equivalent(segmented, reference, signatures):
    for signature in signatures:
        assert _hit_tuples(segmented, signature) == _hit_tuples(
            reference, signature
        )
        assert [
            (hit.digest, hit.position, hit.score)
            for hit in segmented.nearest(signature, limit=5)
        ] == [
            (hit.digest, hit.position, hit.score)
            for hit in reference.nearest(signature, limit=5)
        ]


class TestMixedSegments:
    def test_waves_tail_and_reload_match_monolithic(
        self, pool, signatures, tmp_path
    ):
        """Three sealed waves plus an unsaved tail answer exactly like
        one monolithic index — before and after a reload."""
        root = tmp_path / "corpus.idx"
        segmented = CorpusIndex()
        reference = CorpusIndex()
        for wave in (pool[0:3], pool[3:6]):
            for model in wave:
                segmented.add(model)
                reference.add(model)
            segmented.save(root)
        for model in pool[6:]:
            # Tail entries on top of two sealed segments.
            segmented.add(model)
            reference.add(model)
        assert segmented.stats()["segments"] == 2
        assert segmented.stats()["tail_models"] == 2
        _assert_equivalent(segmented, reference, signatures)
        segmented.save(root)
        _assert_equivalent(CorpusIndex.load(root), reference, signatures)

    def test_tombstone_and_override_match_monolithic(
        self, pool, signatures, tmp_path
    ):
        root = tmp_path / "corpus.idx"
        segmented = CorpusIndex()
        reference = CorpusIndex()
        for model in pool:
            segmented.add(model)
            reference.add(model)
        segmented.save(root)
        victim = model_digest(pool[2])
        assert segmented.remove(victim) and reference.remove(victim)
        # Sealed-entry refresh becomes an override, not a new entry.
        segmented.add(pool[4], label="renamed", path="/tmp/renamed.xml")
        reference.add(pool[4], label="renamed", path="/tmp/renamed.xml")
        assert len(segmented) == len(pool) - 1
        entry = segmented.get(model_digest(pool[4]))
        assert entry.label == "renamed"
        assert entry.path == "/tmp/renamed.xml"
        _assert_equivalent(segmented, reference, signatures)
        segmented.save(root)
        _assert_equivalent(CorpusIndex.load(root), reference, signatures)

    def test_readd_after_remove_reenters_at_the_end(
        self, pool, signatures, tmp_path
    ):
        """Resurrecting a tombstoned sealed entry matches the
        monolithic remove-then-add: the model re-enters at the end of
        the insertion order (with fresh metadata), without recomputing
        its signature."""
        root = tmp_path / "corpus.idx"
        segmented = CorpusIndex()
        reference = CorpusIndex()
        for model in pool:
            segmented.add(model)
            reference.add(model)
        segmented.save(root)
        victim = model_digest(pool[0])
        segmented.remove(victim)
        reference.remove(victim)
        segmented.add(pool[0], label="back")
        reference.add(pool[0], label="back")
        hits = segmented.query(signatures[0])
        assert hits[-1].digest == victim
        assert hits[-1].label == "back"
        _assert_equivalent(segmented, reference, signatures)
        segmented.save(root)
        _assert_equivalent(CorpusIndex.load(root), reference, signatures)

    def test_touch_of_sealed_entry_steers_eviction(self, pool, tmp_path):
        root = tmp_path / "corpus.idx"
        segmented = CorpusIndex()
        digests = [segmented.add(model) for model in pool]
        segmented.save(root)
        loaded = CorpusIndex.load(root)
        loaded.touch(digests[0])
        removed = loaded.evict(len(pool) - 3)
        assert removed == digests[1:4]
        assert digests[0] in loaded

    def test_compact_merges_and_cleans(self, pool, signatures, tmp_path):
        root = tmp_path / "corpus.idx"
        segmented = CorpusIndex()
        for model in pool[:6]:
            segmented.add(model)
        segmented.save(root)
        for model in pool[6:]:
            segmented.add(model)
        segmented.save(root)
        victim = model_digest(pool[1])
        segmented.remove(victim)
        report = segmented.compact()
        assert report == {
            "models": len(pool) - 1,
            "segments_merged": 2,
            "tombstones_cleared": 1,
        }
        shape = segmented.stats()
        assert shape["segments"] == 1
        assert shape["tombstones"] == shape["overrides"] == 0
        # Old segment directories are gone; only the merged one remains.
        assert sorted(
            entry.name
            for entry in root.iterdir()
            if entry.name.startswith("seg-")
        ) == ["seg-000002"]
        reference = CorpusIndex()
        for position, model in enumerate(pool):
            if position != 1:
                reference.add(model)
        _assert_equivalent(segmented, reference, signatures)
        _assert_equivalent(CorpusIndex.load(root), reference, signatures)

    def test_compact_requires_saved_index(self, pool):
        index = CorpusIndex()
        index.add(pool[0])
        with pytest.raises(ValueError, match="save"):
            index.compact()

    def test_load_is_lazy(self, pool, signatures, tmp_path):
        """Cold open reads metadata only; posting and signature arrays
        are mmap'ed on first use — the load-cost-proportional-to-hits
        contract."""
        root = tmp_path / "corpus.idx"
        index = CorpusIndex()
        for model in pool:
            index.add(model)
        index.save(root)
        loaded = CorpusIndex.load(root)
        assert loaded._segments[0]._mmaps == {}
        loaded.query(signatures[0])
        assert "post_keys" in loaded._segments[0]._mmaps


@st.composite
def operations(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("add"),
                    st.integers(0, POOL_SIZE - 1),
                ),
                st.tuples(
                    st.just("remove"),
                    st.integers(0, POOL_SIZE - 1),
                ),
                st.tuples(st.just("touch"), st.integers(0, POOL_SIZE - 1)),
                st.tuples(st.just("evict"), st.integers(0, POOL_SIZE)),
                st.tuples(st.just("save")),
                st.tuples(st.just("compact")),
            ),
            min_size=1,
            max_size=14,
        )
    )
    return ops


class TestEquivalenceProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=operations())
    def test_any_operation_sequence_matches_monolithic_rebuild(
        self, ops, pool, signatures, digests, tmp_path_factory
    ):
        """Any add/remove/touch/evict/save/compact sequence answers
        queries byte-identically to (a) a monolithic index replaying
        the same operations in memory and (b) a fresh monolithic index
        rebuilt from the surviving models in surviving order."""
        root = tmp_path_factory.mktemp("segmented") / "corpus.idx"
        segmented = CorpusIndex()
        reference = CorpusIndex()
        saved = False
        for op in ops:
            if op[0] == "add":
                model = pool[op[1]]
                signature = signatures[op[1]]
                segmented.add(model, signature=signature)
                reference.add(model, signature=signature)
            elif op[0] == "remove":
                assert segmented.remove(digests[op[1]]) == reference.remove(
                    digests[op[1]]
                )
            elif op[0] == "touch":
                segmented.touch(digests[op[1]])
                reference.touch(digests[op[1]])
            elif op[0] == "evict":
                assert segmented.evict(op[1]) == reference.evict(op[1])
            elif op[0] == "save":
                segmented.save(root)
                saved = True
            elif op[0] == "compact":
                if saved:
                    segmented.compact()
        assert len(segmented) == len(reference)
        assert segmented.digests() == reference.digests()
        probe = signatures[: 3]
        _assert_equivalent(segmented, reference, probe)
        # (b) fresh rebuild from the survivors, in surviving order.
        if len(reference):
            order = [
                hit.digest for hit in reference.query(signatures[0])
            ]
            by_digest = dict(zip(digests, pool))
            rebuilt = CorpusIndex()
            for digest in order:
                rebuilt.add(
                    by_digest[digest],
                    label=reference.get(digest).label,
                )
            for signature in probe:
                assert [
                    (hit.digest, hit.position, hit.score, hit.blocked,
                     hit.united)
                    for hit in segmented.query(signature)
                ] == [
                    (hit.digest, hit.position, hit.score, hit.blocked,
                     hit.united)
                    for hit in rebuilt.query(signature)
                ]
        # And the on-disk form agrees with the in-memory one.
        segmented.save(root)
        _assert_equivalent(CorpusIndex.load(root), reference, probe)


class TestCrashRecovery:
    def test_torn_manifest_write_recovers_from_backup(
        self, pool, signatures, tmp_path, capsys
    ):
        """A torn manifest write (chaos ``checkpoint-write`` site,
        ``reason="corpus-manifest"``) loses at most that write's delta:
        load falls back to ``manifest.json.bak`` and the index keeps
        working, including the next save over the orphaned segment."""
        root = tmp_path / "corpus.idx"
        index = CorpusIndex()
        for model in pool[:5]:
            index.add(model)
        index.save(root)
        good = _hit_tuples(CorpusIndex.load(root), signatures[0])
        index.add(pool[5])
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(
                    site="checkpoint-write",
                    action="torn-write",
                    match={"reason": "corpus-manifest"},
                )
            ],
        )
        with chaos.active(spec):
            with pytest.raises(chaos.ChaosKill):
                index.save(root)
        capsys.readouterr()
        recovered = CorpusIndex.load(root)
        captured = capsys.readouterr()
        assert "recovered from" in captured.err
        assert _hit_tuples(recovered, signatures[0]) == good
        # The sealed-but-uncommitted segment is an invisible orphan;
        # re-adding and saving reclaims its name without collision.
        recovered.add(pool[5])
        recovered.save(root)
        assert len(CorpusIndex.load(root)) == 6

    def test_both_copies_unreadable_is_an_error(self, tmp_path):
        root = tmp_path / "corpus.idx"
        root.mkdir()
        (root / "manifest.json").write_text("{torn")
        with pytest.raises(ValueError, match="rebuild"):
            CorpusIndex.load(root)

    def test_missing_manifest_is_file_not_found(self, tmp_path):
        root = tmp_path / "corpus.idx"
        root.mkdir()
        with pytest.raises(FileNotFoundError):
            CorpusIndex.load(root)


class TestParallelBuild:
    def test_parallel_add_all_matches_serial(
        self, pool, signatures, tmp_path
    ):
        serial = CorpusIndex()
        serial.add_all(pool, labels=[f"m{i}" for i in range(len(pool))])
        parallel = CorpusIndex()
        store = ArtifactStore(tmp_path / "store")
        added, refreshed = parallel.add_all(
            pool,
            labels=[f"m{i}" for i in range(len(pool))],
            store=store,
            workers=2,
        )
        assert (added, refreshed) == (len(pool), 0)
        _assert_equivalent(parallel, serial, signatures)
        # The workers wrote their signatures back: a second parallel
        # build adopts them through the store's batch read path.
        assert len(store.signatures([model_digest(m) for m in pool])) == len(
            pool
        )

    def test_parallel_build_without_store_uses_scratch(self, pool):
        index = CorpusIndex()
        added, refreshed = index.add_all(pool[:4], workers=2)
        assert (added, refreshed) == (4, 0)

    def test_refresh_through_add_all_parallel(self, pool, tmp_path):
        index = CorpusIndex()
        index.add_all(pool[:4])
        added, refreshed = index.add_all(
            pool[:6], store=ArtifactStore(tmp_path / "store"), workers=2
        )
        assert (added, refreshed) == (2, 4)


class TestPackedSignatures:
    def test_pack_view_round_trip(self, signatures):
        packed = PackedSignatures.pack(
            signatures[0].options_key, signatures
        )
        assert len(packed) == len(signatures)
        for position, signature in enumerate(signatures):
            view = packed.view(position)
            assert view.options_key == signature.options_key
            assert view.component_count == signature.component_count
            assert view.self_clean == signature.self_clean
            assert np.array_equal(view.counts, signature.counts)
            assert np.array_equal(view.key_hashes, signature.key_hashes)
            assert np.array_equal(
                view.key_fingerprints, signature.key_fingerprints
            )
            assert np.array_equal(view.key_primary, signature.key_primary)

    def test_pack_rejects_foreign_options(self, signatures):
        with pytest.raises(ValueError):
            PackedSignatures.pack(("something", "else"), signatures[:2])

    def test_empty_pack(self):
        packed = PackedSignatures.pack(("key",), [])
        assert len(packed) == 0
        assert packed.key_hashes.size == 0
