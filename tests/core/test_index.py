"""Unit tests for the three component-index strategies."""

import pytest

from repro.core import HashIndex, LinearIndex, SortedKeyIndex, make_index

STRATEGIES = [HashIndex, LinearIndex, SortedKeyIndex]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestIndexContract:
    def test_empty_index_finds_nothing(self, strategy):
        index = strategy()
        assert index.find(["id:x"]) is None
        assert len(index) == 0

    def test_add_and_find_single_key(self, strategy):
        index = strategy()
        index.add(["id:a"], "component_a")
        assert index.find(["id:a"]) == "component_a"

    def test_find_by_any_key(self, strategy):
        index = strategy()
        index.add(["id:a", "name:alpha"], "component_a")
        assert index.find(["name:alpha"]) == "component_a"
        assert index.find(["id:a"]) == "component_a"

    def test_miss_returns_none(self, strategy):
        index = strategy()
        index.add(["id:a"], "component_a")
        assert index.find(["id:b"]) is None

    def test_first_registration_wins(self, strategy):
        # Figure 5 keeps S1: the earliest component under a key must
        # keep winning lookups.
        index = strategy()
        index.add(["name:shared"], "first")
        index.add(["name:shared"], "second")
        assert index.find(["name:shared"]) == "first"

    def test_multiple_probe_keys_first_hit(self, strategy):
        index = strategy()
        index.add(["id:a"], "A")
        index.add(["id:b"], "B")
        assert index.find(["id:missing", "id:b"]) == "B"

    def test_len_counts_components(self, strategy):
        index = strategy()
        index.add(["id:a", "name:a"], "A")
        index.add(["id:b"], "B")
        assert len(index) == 2

    def test_many_entries(self, strategy):
        index = strategy()
        for i in range(200):
            index.add([f"id:c{i}", f"name:n{i}"], i)
        assert index.find(["id:c137"]) == 137
        assert index.find(["name:n42"]) == 42
        assert index.find(["id:c999"]) is None


def test_make_index_strategies():
    assert isinstance(make_index("hash"), HashIndex)
    assert isinstance(make_index("linear"), LinearIndex)
    assert isinstance(make_index("sorted"), SortedKeyIndex)


def test_make_index_unknown():
    with pytest.raises(ValueError):
        make_index("btree")


def test_strategies_agree_on_random_workload():
    import random

    rng = random.Random(7)
    indexes = [HashIndex(), LinearIndex(), SortedKeyIndex()]
    keys = [f"k{i}" for i in range(50)]
    for step in range(300):
        chosen = rng.sample(keys, rng.randint(1, 3))
        for index in indexes:
            index.add(list(chosen), step)
    for probe in range(100):
        chosen = rng.sample(keys, rng.randint(1, 3))
        results = {index.find(list(chosen)) for index in indexes}
        assert len(results) == 1, f"strategies disagree on {chosen}"
