"""Per-model phase-index artifacts: build, bind, reuse, isolation.

The tentpole guarantees of :class:`~repro.core.compose.ModelIndexSet`:

* rows are a pure, picklable function of ``(model, key options)``,
  bindable to any model with the same component-list content;
* merges reuse the frozen bases through copy-on-write overlays — an
  ephemeral merge must leave the shared base *and the backing model*
  bit-identical (digest-compared) to their pre-merge state;
* sessions attach rows only to unowned leaf targets; the
  ``source_owned`` move path (owned accumulators, moved intermediates)
  must never see a shared base;
* stored rows keyed under other options are ignored, never misapplied.
"""

import pickle

import pytest

from repro import ComposeSession, ModelBuilder, compose_all, match_all
from repro.core.artifact_store import (
    ArtifactStore,
    compute_artifacts,
    model_digest,
)
from repro.core.compose import (
    BoundIndexSet,
    ModelIndexSet,
    index_options_key,
)
from repro.core.index import HashIndex, OverlayIndex
from repro.core.match_all import _PairEngine
from repro.core.options import ComposeOptions
from repro.core.session import stable_labels


def _model(model_id="m", k=0.5, species=("A", "B")):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for position, species_id in enumerate(species):
        builder.species(species_id, float(position))
    builder.reaction(
        f"{model_id}_r1",
        [species[0]],
        [species[-1]],
        formula=f"k * {species[0]}",
        local_parameters={"k": k},
    )
    builder.parameter(f"{model_id}_p", 2.5)
    builder.assignment_rule(f"{model_id}_p2", f"2 * {species[0]}")
    builder.event(
        f"{model_id}_e", f"{species[0]} > 1", {species[-1]: "0"}
    )
    return builder.build()


class TestModelIndexSet:
    def test_rows_cover_every_phase(self):
        index_set = ModelIndexSet.build(_model())
        assert set(index_set.rows) == {
            "functionDefinitions",
            "unitDefinitions",
            "compartmentTypes",
            "speciesTypes",
            "compartments",
            "species",
            "parameters",
            "initialAssignments",
            "rules",
            "constraints",
            "reactions",
            "events",
        }
        assert len(index_set.rows["species"]) == 2
        assert len(index_set.rows["reactions"]) == 1

    def test_bind_resolves_to_live_objects(self):
        model = _model()
        options = ComposeOptions()
        bound = ModelIndexSet.build(model, options).bind(model, options)
        base = bound.for_phase("species")
        assert base.find_one("id:A") is model.species[0]
        assert base.find_one("id:B") is model.species[1]
        # Rebinding to a copy resolves to the *copy's* objects — rows
        # are positional, never pinned to the original components.
        clone = model.copy()
        rebound = ModelIndexSet.build(model, options).bind(clone, options)
        assert rebound.for_phase("species").find_one("id:A") is clone.species[0]

    def test_bind_never_pins_the_bound_model(self):
        """bind() returns a fresh view and keeps no reference to the
        model — a memo here would pin a session step's composed
        result alive for the artifact's lifetime.  Callers that want
        reuse (the pair engine) hold the BoundIndexSet themselves."""
        import weakref

        options = ComposeOptions()
        index_set = ModelIndexSet.build(_model(), options)
        model = _model()
        ref = weakref.ref(model)
        index_set.bind(model, options)
        del model
        assert ref() is None

    def test_pure_function_of_model(self):
        assert (
            ModelIndexSet.build(_model()).rows
            == ModelIndexSet.build(_model()).rows
        )

    def test_pickle_round_trip_preserves_rows(self):
        model = _model()
        options = ComposeOptions()
        index_set = ModelIndexSet.build(model, options)
        clone = pickle.loads(pickle.dumps(index_set))
        assert clone.rows == index_set.rows
        assert clone.options_key == index_set.options_key

    def test_options_key_distinguishes_semantics(self):
        heavy = ModelIndexSet.build(_model(), ComposeOptions())
        assert heavy.matches(ComposeOptions())
        assert not heavy.matches(ComposeOptions.light())
        assert not heavy.matches(
            ComposeOptions(use_math_patterns=False)
        )
        # The index *strategy* shapes the bound bases, not the rows.
        assert heavy.matches(ComposeOptions().with_index("sorted"))

    def test_options_key_tracks_synonym_table_content(self):
        base = index_options_key(ComposeOptions())
        options = ComposeOptions()
        options.synonyms.add_ring(["glucose-ish", "glc-ish"])
        assert index_options_key(options) != base


class TestOverlayIsolation:
    def test_adds_land_in_delta_not_base(self):
        base = HashIndex()
        base.add(["id:x"], "first")
        base.freeze()
        snapshot = dict(base._table)
        overlay = OverlayIndex(base, "hash")
        overlay.add(["id:y"], "second")
        overlay.add(["id:x"], "shadowed")
        assert base._table == snapshot
        assert overlay.find(["id:y"]) == "second"
        # First registration wins across the base/delta boundary.
        assert overlay.find(["id:x"]) == "first"

    def test_ephemeral_sweep_leaves_base_and_model_bit_identical(self):
        """Digest-compared mutation isolation: shared bases and their
        backing models are untouched by any number of ephemeral
        merges run through them."""
        models = [_model("a"), _model("b", k=0.25, species=("A", "C"))]
        engine = _PairEngine(None, models, stable_labels(models))
        # Force artifact + bound-base materialisation, snapshot state.
        for i in range(2):
            engine._model_artifacts(i)
        bounds = [engine._target_indexes(i) for i in range(2)]
        digests_before = [model_digest(model) for model in models]

        def snapshot(bound):
            # Key → component identity per phase: catches any write
            # to a shared base (new/lost keys, remapped components).
            return {
                name: {
                    key: id(component)
                    for key, component in bound.for_phase(name)._table.items()
                }
                for name in ("species", "reactions", "parameters", "events")
            }

        rows_before = [snapshot(bound) for bound in bounds]
        engine.run_pairs([(0, 0), (0, 1), (1, 1), (0, 1)])
        # The backing models serialise bit-identically (the only
        # engine-visible writes are the droppable per-object key
        # caches, which canonical SBML never sees)...
        assert [model_digest(model) for model in models] == digests_before
        # ...and the shared bases still hold exactly the same keys
        # bound to exactly the same component objects.
        assert [snapshot(bound) for bound in bounds] == rows_before

    def test_prebuilt_sweep_never_mutates_inputs(self):
        models = [_model("a"), _model("b", k=0.1)]
        before = [model_digest(model) for model in models]
        cold = match_all(models)
        warm = match_all(models)
        assert [model_digest(model) for model in models] == before
        assert [o.key() for o in warm.outcomes] == [
            o.key() for o in cold.outcomes
        ]


class TestSessionIndexRows:
    def _spy(self, session):
        """Record (source_owned, got_indexes) per compose_step call."""
        calls = []
        original = session._composer.compose_step

        def wrapper(first, second, **kwargs):
            calls.append(
                (
                    kwargs.get("source_owned", False),
                    kwargs.get("target_indexes") is not None,
                )
            )
            return original(first, second, **kwargs)

        session._composer.compose_step = wrapper
        return calls

    def test_store_backed_session_attaches_rows_to_leaf_targets(
        self, tmp_path
    ):
        store = ArtifactStore(tmp_path / "artifacts")
        models = [_model("a"), _model("b", k=0.25)]
        session = ComposeSession(artifact_store=store)
        calls = self._spy(session)
        session.compose(models[0], models[1])
        assert calls == [(False, True)]
        assert session._leaf_index_rows(models[0]) is not None

    def test_source_owned_steps_never_get_shared_bases(self, tmp_path):
        """The session move path: every step after the first folds
        into an owned, mutated accumulator — no prebuilt base can
        describe it, so no step with an owned target (and no merge of
        moved intermediates) may receive index rows."""
        store = ArtifactStore(tmp_path / "artifacts")
        models = [_model(f"m{i}", k=0.1 * (i + 1)) for i in range(4)]
        for plan in ("fold", "tree"):
            session = ComposeSession(artifact_store=store)
            calls = self._spy(session)
            result = session.compose_all(models, plan=plan)
            # Exactly the steps whose target is an unowned leaf carry
            # rows; fold has one (the first), the 4-model balanced
            # tree has two (both leaf-leaf siblings).
            expected_with_rows = {"fold": 1, "tree": 2}[plan]
            assert sum(1 for _, has in calls if has) == expected_with_rows
            # A source_owned step is a moved intermediate: never rows.
            assert all(not has for owned, has in calls if owned)
            # And the result matches a plain in-memory session.
            reference = ComposeSession().compose_all(models, plan=plan)
            assert sorted(result.model.global_ids()) == sorted(
                reference.model.global_ids()
            )
            assert result.report.mappings == reference.report.mappings

    def test_session_results_identical_with_and_without_rows(
        self, tmp_path
    ):
        from repro import write_sbml

        store = ArtifactStore(tmp_path / "artifacts")
        models = [_model(f"m{i}", k=0.2 * (i + 1)) for i in range(3)]
        with_store = ComposeSession(artifact_store=store).compose_all(models)
        plain = ComposeSession().compose_all(models)
        assert write_sbml(with_store.model) == write_sbml(plain.model)

    def test_mismatched_options_rows_are_ignored(self, tmp_path):
        """Stored rows are keyed under heavy defaults; a light-
        semantics session must not bind them."""
        store = ArtifactStore(tmp_path / "artifacts")
        models = [_model("a"), _model("b", k=0.25)]
        # Populate the store with heavy-keyed entries.
        for model in models:
            store.put(model_digest(model), compute_artifacts(model))
        session = ComposeSession(ComposeOptions.light(), artifact_store=store)
        session.compose(models[0], models[1])
        assert session._leaf_index_rows(models[0]) is None


class TestEngineOptionMismatch:
    def test_engine_rebuilds_rows_for_other_semantics(self, tmp_path):
        """A store populated under heavy defaults serves a light-
        semantics sweep: the stored rows are ignored (fingerprint
        mismatch), local rows are built, outcomes equal the fresh
        light sweep."""
        models = [_model("a"), _model("b", k=0.25), _model("c", k=0.1)]
        store = tmp_path / "artifacts"
        match_all(models, store=store)  # heavy pass populates
        light = ComposeOptions.light()
        stored = match_all(models, light, store=store)
        fresh = match_all(models, light, prebuilt_indexes=False)
        assert [o.key() for o in stored.outcomes] == [
            o.key() for o in fresh.outcomes
        ]

    def test_prebuilt_flag_off_restores_fresh_builds(self):
        models = [_model("a"), _model("b", k=0.25)]
        engine = _PairEngine(
            None, models, stable_labels(models), prebuilt_indexes=False
        )
        engine.run_pairs([(0, 1)])
        assert engine._target_indexes(0) is None

    def test_source_only_models_never_pay_the_index_build(self):
        """Index sets are bound lazily on first use as a *target*: a
        model only ever on the source side of its pairs keeps no
        bound indexes at all."""
        models = [_model("a"), _model("b", k=0.25)]
        engine = _PairEngine(None, models, stable_labels(models))
        engine.run_pairs([(0, 1)])  # model 1 is source-only here
        assert 0 in engine._indexes
        assert 1 not in engine._indexes


class TestMappingGuardFallback:
    def test_rename_mid_merge_falls_back_and_agrees(self):
        """A source species sharing a target id but living in another
        compartment is adopted under a fresh id — a *rename*, which
        makes the mapping table non-empty before the parameters /
        rules / events phases.  Their prebuilt (empty-mapping) bases
        are then invalid; the engine must fall back to fresh builds
        and still match the fresh-index sweep bit for bit."""
        left = (
            ModelBuilder("L")
            .compartment("cell", size=1.0)
            .species("x", 1.0)
            .parameter("x_rate", 1.0)
            .build()
        )
        right = (
            ModelBuilder("R")
            .compartment("vesicle", size=2.0)
            .species("x", 3.0)  # same id, different compartment
            .parameter("x_rate", 4.0)  # same id, different value
            .assignment_rule("x_conc", "x / 2")
            .event("R_e", "x > 1", {"x": "0"})
            .build()
        )
        prebuilt = match_all([left, right])
        cross = next(o for o in prebuilt.outcomes if o.i == 0 and o.j == 1)
        assert cross.renamed > 0, "scenario must actually rename"
        fresh = match_all([left, right], prebuilt_indexes=False)
        assert [o.key() for o in prebuilt.outcomes] == [
            o.key() for o in fresh.outcomes
        ]
        # Inputs stay untouched either way.
        assert left.species[0].id == "x" and right.species[0].id == "x"


class TestIndexStrategies:
    @pytest.mark.parametrize("strategy", ["hash", "linear", "sorted"])
    def test_prebuilt_sweep_identical_across_strategies(self, strategy):
        models = [_model("a"), _model("b", k=0.25), _model("c", k=0.1)]
        options = ComposeOptions().with_index(strategy)
        prebuilt = match_all(models, options)
        fresh = match_all(models, options, prebuilt_indexes=False)
        assert [o.key() for o in prebuilt.outcomes] == [
            o.key() for o in fresh.outcomes
        ]
