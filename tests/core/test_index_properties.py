"""Property test: the three index strategies are interchangeable.

The ablation benchmarks swap ``HashIndex`` / ``SortedKeyIndex`` /
``LinearIndex`` under the same composition and attribute any timing
difference to the index — which is only valid if the strategies are
observationally identical.  The contract (Figure 5 keeps S1): a
component may register under several keys, a probe tries its keys in
order, and among components registered under the same key the
*earliest registered* one keeps winning forever.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HashIndex, LinearIndex, SortedKeyIndex

# A small key alphabet makes same-key collisions (the interesting
# case for first-registration-wins) likely.
keys = st.integers(min_value=0, max_value=11).map(lambda n: f"k{n}")
key_lists = st.lists(keys, min_size=1, max_size=3)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), key_lists),
        st.tuples(st.just("find"), key_lists),
    ),
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(operations=operations)
def test_strategies_agree_on_interleaved_sequences(operations):
    """Identical results for any interleaving of adds and probes.

    Interleaving matters: ``SortedKeyIndex`` buffers additions and
    compacts lazily, so a probe can hit entries in the sorted arrays,
    the pending buffer, or both — every path must still return the
    earliest-registered component.
    """
    indexes = [HashIndex(), LinearIndex(), SortedKeyIndex()]
    serial = 0
    for action, key_list in operations:
        if action == "add":
            for index in indexes:
                index.add(list(key_list), serial)
            serial += 1
        else:
            results = {index.find(list(key_list)) for index in indexes}
            assert len(results) == 1, (
                f"strategies disagree on probe {key_list}: {results}"
            )
    assert len({len(index) for index in indexes}) == 1


@settings(max_examples=100, deadline=None)
@given(
    registrations=st.lists(key_lists, min_size=1, max_size=40),
    probe=key_lists,
)
def test_first_registration_wins_everywhere(registrations, probe):
    """The winner of any probe is the earliest-registered component
    carrying the earliest-probed key — on every strategy."""
    indexes = [HashIndex(), LinearIndex(), SortedKeyIndex()]
    for serial, key_list in enumerate(registrations):
        for index in indexes:
            index.add(list(key_list), serial)
    expected = None
    for key in probe:
        matches = [
            serial
            for serial, key_list in enumerate(registrations)
            if key in key_list
        ]
        if matches:
            expected = min(matches)
            break
    for index in indexes:
        assert index.find(list(probe)) == expected, type(index).__name__
