"""The advisory file-lock shim guarding the sweep journal."""

import multiprocessing
import time

import pytest

from repro.core.locking import FileLock


def _hold_then_bump(lock_path, counter_path, hold_seconds):
    with FileLock(lock_path):
        value = int(open(counter_path).read())
        time.sleep(hold_seconds)
        with open(counter_path, "w") as handle:
            handle.write(str(value + 1))


class TestFileLock:
    def test_context_manager_creates_lock_file(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path) as lock:
            assert path.is_file()
            assert lock._fd is not None
        assert path.is_file()  # never removed; contents irrelevant

    def test_reacquire_same_instance_rejected(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.acquire()
        try:
            with pytest.raises(RuntimeError):
                lock.acquire()
        finally:
            lock.release()

    def test_release_without_acquire_is_noop(self, tmp_path):
        FileLock(tmp_path / "x.lock").release()

    def test_creates_missing_parent(self, tmp_path):
        with FileLock(tmp_path / "deep" / "dir" / "x.lock"):
            pass

    def test_serialises_read_modify_write_across_processes(self, tmp_path):
        # Without the lock, both holders read 0 and one increment is
        # lost; with it, the counter always lands on the hold count.
        lock_path = str(tmp_path / "x.lock")
        counter = str(tmp_path / "counter")
        with open(counter, "w") as handle:
            handle.write("0")
        workers = [
            multiprocessing.Process(
                target=_hold_then_bump, args=(lock_path, counter, 0.05)
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
        assert int(open(counter).read()) == 4


class _FakeMsvcrt:
    """A stub of the Windows ``msvcrt`` module whose ``LK_LOCK`` fails
    like the real one does under contention: ``OSError`` after its
    internal ~10s polling budget, instead of blocking."""

    LK_LOCK = 0
    LK_UNLCK = 1

    def __init__(self, failures):
        self.failures = failures
        self.calls = []

    def locking(self, fd, mode, nbytes):
        self.calls.append((mode, nbytes))
        if mode == self.LK_LOCK and self.failures > 0:
            self.failures -= 1
            raise OSError(36, "Resource deadlock avoided")


class TestMsvcrtFallback:
    """The Windows path must present the same *blocking* contract the
    flock path does — ``LK_LOCK``'s budget exhaustion is retried, not
    surfaced as a crash mid-journal-write."""

    @pytest.fixture()
    def windowsish(self, monkeypatch):
        from repro.core import locking as locking_mod

        monkeypatch.setattr(locking_mod, "fcntl", None)
        monkeypatch.setattr(
            locking_mod.FileLock, "_MSVCRT_RETRY_DELAY", 0.001
        )
        return locking_mod

    def test_acquire_retries_past_lk_lock_budget(
        self, tmp_path, monkeypatch, windowsish
    ):
        fake = _FakeMsvcrt(failures=2)
        monkeypatch.setattr(windowsish, "msvcrt", fake)
        with FileLock(tmp_path / "x.lock"):
            # Two budget exhaustions were absorbed; the third attempt
            # held the lock.
            assert fake.calls == [(fake.LK_LOCK, 1)] * 3
        # Release unlocked the same byte range.
        assert fake.calls[-1] == (fake.LK_UNLCK, 1)

    def test_uncontended_acquire_locks_once(
        self, tmp_path, monkeypatch, windowsish
    ):
        fake = _FakeMsvcrt(failures=0)
        monkeypatch.setattr(windowsish, "msvcrt", fake)
        with FileLock(tmp_path / "x.lock"):
            assert fake.calls == [(fake.LK_LOCK, 1)]
        assert fake.calls == [(fake.LK_LOCK, 1), (fake.LK_UNLCK, 1)]
