"""Unit tests for IdMapping and MergeReport."""

from repro.core import IdMapping, MergeReport
from repro.mathml import parse_infix


class TestIdMapping:
    def test_empty_resolves_identity(self):
        mapping = IdMapping()
        assert mapping.resolve("x") == "x"
        assert mapping.resolve(None) is None

    def test_simple_mapping(self):
        mapping = IdMapping()
        mapping.add("old", "new")
        assert mapping.resolve("old") == "new"
        assert "old" in mapping
        assert len(mapping) == 1

    def test_identity_mapping_is_noop(self):
        mapping = IdMapping()
        mapping.add("x", "x")
        assert len(mapping) == 0

    def test_chain_resolution(self):
        mapping = IdMapping()
        mapping.add("a", "b")
        mapping.add("b", "c")
        assert mapping.resolve("a") == "c"

    def test_cycle_terminates(self):
        mapping = IdMapping()
        mapping.add("a", "b")
        mapping.add("b", "a")
        assert mapping.resolve("a") in ("a", "b")

    def test_rewrite_math(self):
        mapping = IdMapping({"old": "new"})
        rewritten = mapping.rewrite_math(parse_infix("k * old"))
        assert rewritten == parse_infix("k * new")

    def test_rewrite_math_empty_mapping_returns_same(self):
        mapping = IdMapping()
        math = parse_infix("k * x")
        assert mapping.rewrite_math(math) is math

    def test_rewrite_none(self):
        assert IdMapping({"a": "b"}).rewrite_math(None) is None

    def test_as_dict_resolves_chains(self):
        mapping = IdMapping()
        mapping.add("a", "b")
        mapping.add("b", "c")
        assert mapping.as_dict() == {"a": "c", "b": "c"}


class TestMergeReport:
    def test_warn_accumulates(self):
        report = MergeReport()
        report.warn("test", "something odd", "species", "A")
        assert len(report.warnings) == 1
        assert "something odd" in str(report.warnings[0])

    def test_conflict_also_warns(self):
        report = MergeReport()
        report.conflict("species", "A", "initial value", 1.0, 2.0)
        assert len(report.conflicts) == 1
        assert len(report.warnings) == 1
        assert report.has_conflicts()

    def test_map_id_skips_identity(self):
        report = MergeReport()
        report.map_id("x", "x")
        assert report.mappings == {}

    def test_rename_records_both(self):
        report = MergeReport()
        report.rename("k", "k_m2")
        assert report.renamed == {"k": "k_m2"}
        assert report.mappings == {"k": "k_m2"}

    def test_count_added(self):
        report = MergeReport()
        report.count_added("species")
        report.count_added("species")
        report.count_added("reaction")
        assert report.added == {"species": 2, "reaction": 1}
        assert report.total_added == 3

    def test_log_text_contains_decisions(self):
        report = MergeReport()
        report.duplicate("species", "A", "A2")
        report.rename("k", "k_m2")
        report.conflict("species", "A", "initial value", 1.0, 2.0)
        text = report.log_text()
        assert "DUPLICATE" in text
        assert "A2 == A" in text
        assert "RENAMED k -> k_m2" in text
        assert "CONFLICT" not in text  # conflicts surface as warnings
        assert "WARNING" in text

    def test_summary_counts(self):
        report = MergeReport()
        report.duplicate("species", "A", "A")
        report.count_added("species")
        summary = report.summary()
        assert "1 duplicate(s)" in summary
        assert "1 component(s) added" in summary
