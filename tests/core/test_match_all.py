"""The batched all-pairs matching engine."""

import pytest

from repro import ModelBuilder, compose_all, match_all, match_all_sharded
from repro.core.match_all import MatchMatrix
from repro.core.options import ComposeOptions


def _module_model(model_id, species, parameter, value=0.5):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder = builder.species(name, 1.0)
    builder = builder.parameter(parameter, value)
    builder = builder.mass_action(
        f"r_{model_id}", [species[0]], [species[-1]], parameter
    )
    return builder.build()


@pytest.fixture
def corpus():
    return [
        _module_model("m1", ["A", "B"], "k1"),
        _module_model("m2", ["B", "C"], "k2"),
        _module_model("m3", ["C", "D"], "k3"),
        _module_model("m4", ["A", "D"], "k4"),
    ]


class TestMatchAll:
    def test_pair_enumeration_with_self(self, corpus):
        matrix = match_all(corpus)
        assert matrix.pair_count == 10  # C(4,2) + 4 self-pairs
        assert [(o.i, o.j) for o in matrix.outcomes] == [
            (i, j) for i in range(4) for j in range(i, 4)
        ]

    def test_no_self_pairs(self, corpus):
        matrix = match_all(corpus, include_self=False)
        assert matrix.pair_count == 6
        assert all(o.i != o.j for o in matrix.outcomes)

    def test_outcomes_match_session_reports(self, corpus):
        # The batched engine shares artifacts but must produce the
        # same matching outcome a standalone composition does.
        matrix = match_all(corpus)
        by_pair = {(o.i, o.j): o for o in matrix.outcomes}
        for i in range(len(corpus)):
            for j in range(i, len(corpus)):
                result = compose_all([corpus[i], corpus[j]])
                outcome = by_pair[(i, j)]
                assert outcome.united == len(result.report.duplicates)
                assert outcome.added == result.report.total_added
                assert outcome.renamed == len(result.report.renamed)
                assert outcome.conflicts == len(result.report.conflicts)

    def test_self_pair_unites_everything(self, corpus):
        matrix = match_all(corpus)
        self_pair = next(o for o in matrix.outcomes if (o.i, o.j) == (0, 0))
        assert self_pair.added == 0
        assert self_pair.united > 0

    def test_inputs_not_mutated(self, corpus):
        snapshots = [sorted(m.global_ids()) for m in corpus]
        match_all(corpus, workers=2)
        assert [sorted(m.global_ids()) for m in corpus] == snapshots

    def test_thread_fanout_deterministic(self, corpus):
        serial = match_all(corpus)
        threaded = match_all(corpus, workers=4)
        assert [o.row()[:5] for o in serial.outcomes] == [
            o.row()[:5] for o in threaded.outcomes
        ]
        assert [
            (o.united, o.added, o.renamed, o.conflicts)
            for o in serial.outcomes
        ] == [
            (o.united, o.added, o.renamed, o.conflicts)
            for o in threaded.outcomes
        ]

    def test_process_fanout_deterministic(self, corpus):
        serial = match_all(corpus)
        pooled = match_all(corpus, workers=2, backend="process")
        assert [
            (o.i, o.j, o.united, o.added, o.renamed, o.conflicts)
            for o in serial.outcomes
        ] == [
            (o.i, o.j, o.united, o.added, o.renamed, o.conflicts)
            for o in pooled.outcomes
        ]

    def test_conflict_counted(self):
        a = _module_model("m1", ["A", "B"], "shared", value=0.5)
        b = _module_model("m2", ["A", "B"], "shared", value=0.5)
        b.species[0].initial_amount = 777.0
        matrix = match_all([a, b], include_self=False)
        assert matrix.outcomes[0].conflicts >= 1

    def test_summary_and_rates(self, corpus):
        matrix = match_all(corpus)
        assert matrix.pairs_per_second > 0
        assert "pairs/s" in matrix.summary()
        assert len(MatchMatrix.csv_header()) == len(
            matrix.outcomes[0].row()
        )

    def test_options_respected(self, corpus):
        # Structural semantics never unites by name, so cross-model
        # pairs unite nothing (no shared ids are checked structurally
        # either — every component is unique).
        matrix = match_all(
            corpus, ComposeOptions.structural(), include_self=False
        )
        assert all(o.united == 0 for o in matrix.outcomes)

    def test_invalid_arguments(self, corpus):
        with pytest.raises(ValueError):
            match_all(corpus, workers=0)
        with pytest.raises(ValueError):
            match_all(corpus, backend="fiber")

    def test_options_fanout_fallback(self, corpus):
        # ComposeOptions(workers=..., backend=...) drives the sweep
        # when the keywords are omitted, exactly as compose_all does;
        # explicit keywords still win.
        matrix = match_all(corpus, ComposeOptions(workers=2))
        assert matrix.workers == 2
        overridden = match_all(corpus, ComposeOptions(workers=2), workers=1)
        assert overridden.workers == 1
        assert [o.key() for o in matrix.outcomes] == [
            o.key() for o in overridden.outcomes
        ]

    def test_store_tier_transparent(self, corpus, tmp_path):
        from repro.core.artifact_store import ArtifactStore

        plain = match_all(corpus)
        stored = match_all(corpus, store=tmp_path / "artifacts")
        assert [o.key() for o in plain.outcomes] == [
            o.key() for o in stored.outcomes
        ]
        # Every model spilled exactly once, shared across its pairs.
        assert len(ArtifactStore(tmp_path / "artifacts")) == len(corpus)


class TestDigestShipping:
    """The format-5 worker boundary: process workers receive a
    ``(label, digest)`` manifest and rehydrate each model from the
    shared artifact store on first touch."""

    def test_digest_shipped_matches_pickled_corpus(self, corpus, tmp_path):
        from repro.core.artifact_store import ArtifactStore

        serial = match_all(corpus)
        shipped = match_all(
            corpus,
            workers=2,
            backend="process",
            store=tmp_path / "store",
        )
        pickled = match_all(
            corpus,
            workers=2,
            backend="process",
            store=tmp_path / "store2",
            digest_shipping=False,
        )
        reference = [
            (o.i, o.j, o.united, o.added, o.renamed, o.conflicts)
            for o in serial.outcomes
        ]
        for matrix in (shipped, pickled):
            assert [
                (o.i, o.j, o.united, o.added, o.renamed, o.conflicts)
                for o in matrix.outcomes
            ] == reference
        # The shipped run populated the store with blob-carrying
        # (worker-rehydratable) entries, one per model.
        store = ArtifactStore(tmp_path / "store")
        assert len(store) == len(corpus)

    def test_manifest_payload_does_not_grow_with_corpus(self, tmp_path):
        """The acceptance number: the initargs payload is a few dozen
        bytes per manifest entry, versus the full serialised corpus."""
        import pickle

        from repro.core.artifact_store import ArtifactStore, CorpusManifest

        store = ArtifactStore(tmp_path / "store")
        small = [
            _module_model(f"m{i}", ["A", "B", "C"], f"k{i}")
            for i in range(4)
        ]
        large = small + [
            _module_model(f"m{i}", ["A", "B", "C"], f"k{i}")
            for i in range(4, 16)
        ]
        manifest_small = CorpusManifest.build(
            small, [m.id for m in small], store
        )
        manifest_large = CorpusManifest.build(
            large, [m.id for m in large], store
        )
        per_entry = (
            len(pickle.dumps(manifest_large)) - len(pickle.dumps(manifest_small))
        ) / (len(large) - len(small))
        per_model = (
            len(pickle.dumps(large)) - len(pickle.dumps(small))
        ) / (len(large) - len(small))
        assert per_entry < 200  # a label + a hex digest, flat
        assert per_entry < per_model / 5

    def test_unwritable_store_falls_back_to_pickled_models(
        self, corpus, monkeypatch, caplog
    ):
        import logging

        from repro.core.artifact_store import ArtifactStore

        def refuse(self, digest, artifacts):
            raise OSError("read-only store")

        monkeypatch.setattr(ArtifactStore, "put", refuse)
        serial = match_all(corpus)
        with caplog.at_level(logging.WARNING, logger="repro.core.match_all"):
            matrix = match_all(corpus, workers=2, backend="process")
        assert "digest shipping disabled" in caplog.text
        assert [o.key() for o in matrix.outcomes] == [
            o.key() for o in serial.outcomes
        ]

    def test_rehydrate_miss_is_a_repro_error(self, corpus, tmp_path):
        from repro.core.artifact_store import ArtifactStore, CorpusManifest
        from repro.core.match_all import _PairEngine
        from repro.errors import ReproError

        store = ArtifactStore(tmp_path / "store")
        manifest = CorpusManifest.build(
            corpus, [m.id for m in corpus], store
        )
        store.clear()  # eviction raced the sweep
        engine = _PairEngine(
            ComposeOptions(),
            None,
            None,
            str(tmp_path / "store"),
            manifest=manifest,
        )
        with pytest.raises(ReproError, match="cannot rehydrate"):
            engine.run_pair(0, 1)

    def test_blobless_entry_is_a_repro_error(self, corpus, tmp_path):
        from repro.core.artifact_store import (
            ArtifactStore,
            CorpusManifest,
            compute_artifacts,
            model_digest,
        )
        from repro.core.match_all import _PairEngine
        from repro.errors import ReproError

        store = ArtifactStore(tmp_path / "store")
        manifest = CorpusManifest.build(
            corpus, [m.id for m in corpus], store
        )
        # Overwrite one entry with a pre-format-5 (blob-less) payload.
        store.put(
            model_digest(corpus[0]),
            compute_artifacts(corpus[0], with_sbml=False),
        )
        engine = _PairEngine(
            ComposeOptions(),
            None,
            None,
            str(tmp_path / "store"),
            manifest=manifest,
        )
        with pytest.raises(ReproError, match="no SBML blob"):
            engine.run_pair(0, 1)


class TestWorkerPoolError:
    def test_worker_death_names_chunk_and_supervise(self, corpus, tmp_path):
        """Chaos regression for the bare-``BrokenProcessPool`` bug: an
        unsupervised process worker death must surface as a
        :class:`WorkerPoolError` naming the pair range and pointing at
        the supervised path."""
        from repro.core import chaos
        from repro.core.match_all import WorkerPoolError

        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(
                    site="pair-start",
                    action="kill",
                    times=1,
                    key="pool-kill",
                )
            ],
        )
        with chaos.active(spec):
            with pytest.raises(WorkerPoolError) as excinfo:
                match_all(corpus, workers=2, backend="process")
        message = str(excinfo.value)
        assert "pairs" in message
        assert "sweep --supervise" in message


class TestMatchAllSharded:
    def test_invalid_shard_arguments(self, corpus):
        with pytest.raises(ValueError):
            match_all_sharded(corpus, shards=0, shard_id=0)
        with pytest.raises(ValueError):
            match_all_sharded(corpus, shards=2, shard_id=2)
        with pytest.raises(ValueError):
            match_all_sharded(corpus, shards=2, shard_id=-1)

    def test_shard_metadata_and_summary(self, corpus):
        matrix = match_all_sharded(corpus, shards=3, shard_id=1)
        assert matrix.shard_id == 1
        assert matrix.shard_count == 3
        assert "shard 1/3" in matrix.summary()

    def test_union_rejects_overlap(self, corpus):
        shard = match_all_sharded(corpus, shards=2, shard_id=0)
        with pytest.raises(ValueError):
            MatchMatrix.union([shard, shard])

    def test_union_round_trips_through_csv(self, corpus, tmp_path):
        from repro.core.match_all import (
            read_outcomes_csv,
            write_outcomes_csv,
        )

        matrix = match_all(corpus)
        full = tmp_path / "full.csv"
        write_outcomes_csv(full, matrix.outcomes)
        assert [o.key() for o in read_outcomes_csv(full)] == [
            o.key() for o in matrix.outcomes
        ]
        deterministic = tmp_path / "det.csv"
        write_outcomes_csv(deterministic, matrix.outcomes, deterministic=True)
        restored = read_outcomes_csv(deterministic)
        assert [o.key() for o in restored] == [o.key() for o in matrix.outcomes]
        assert all(o.seconds == 0.0 for o in restored)
