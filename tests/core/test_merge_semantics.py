"""Merge semantics fixtures from the paper's Figures 1-3.

* Figure 1: merging two identical models (A -> B <-> C) yields the
  same model ("where models are identical, the result is the same as
  either of the models").
* Figure 2: merging two disjoint models (A -> B -> C and D -> E) is
  their disjoint union.
* Figure 3: merging models sharing species and reactions
  (A -> B <-> C -> D with A -> B -> C) unites the shared nodes and
  edges.
"""

import pytest

from repro import ModelBuilder, compose_all
from repro.sbml import validate_model


def figure1_model(model_id="fig1"):
    """A -k1-> B, B <->(k2,k3) C (the paper's Figure 1 network)."""
    return (
        ModelBuilder(model_id)
        .compartment("cell", size=1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.5)
        .parameter("k2", 0.3)
        .parameter("k3", 0.1)
        .mass_action("r1", ["A"], ["B"], "k1")
        .mass_action("r2", ["B"], ["C"], "k2")
        .mass_action("r3", ["C"], ["B"], "k3")
        .build()
    )


class TestFigure1Identical:
    def test_species_unchanged(self):
        merged, report = compose_all([figure1_model(), figure1_model("fig1b")]).pair()
        assert sorted(s.id for s in merged.species) == ["A", "B", "C"]

    def test_reactions_unchanged(self):
        merged = compose_all([figure1_model(), figure1_model("fig1b")]).model
        assert sorted(r.id for r in merged.reactions) == ["r1", "r2", "r3"]

    def test_parameters_unchanged(self):
        merged = compose_all([figure1_model(), figure1_model("fig1b")]).model
        assert sorted(p.id for p in merged.parameters) == ["k1", "k2", "k3"]

    def test_network_size_unchanged(self):
        base = figure1_model()
        merged = compose_all([base, figure1_model("fig1b")]).model
        assert merged.network_size() == base.network_size()

    def test_no_conflicts(self):
        report = compose_all([figure1_model(), figure1_model("fig1b")]).report
        assert not report.has_conflicts()

    def test_everything_united(self):
        report = compose_all([figure1_model(), figure1_model("fig1b")]).report
        # compartment + 3 species + 3 params + 3 reactions = 10 duplicates
        assert len(report.duplicates) == 10
        assert report.total_added == 0

    def test_result_valid(self):
        merged = compose_all([figure1_model(), figure1_model("fig1b")]).model
        assert validate_model(merged) == []


class TestFigure2Disjoint:
    def model_abc(self):
        """A -k1-> B -k2-> C."""
        return (
            ModelBuilder("abc")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .species("C", 0.0)
            .parameter("k1", 0.5)
            .parameter("k2", 0.3)
            .mass_action("r1", ["A"], ["B"], "k1")
            .mass_action("r2", ["B"], ["C"], "k2")
            .build()
        )

    def model_de(self):
        """D -k3-> E."""
        return (
            ModelBuilder("de")
            .compartment("cell", size=1.0)
            .species("D", 5.0)
            .species("E", 0.0)
            .parameter("k3", 0.2)
            .mass_action("r3", ["D"], ["E"], "k3")
            .build()
        )

    def test_union_of_species(self):
        merged = compose_all([self.model_abc(), self.model_de()]).model
        assert sorted(s.id for s in merged.species) == [
            "A", "B", "C", "D", "E",
        ]

    def test_union_of_reactions(self):
        merged = compose_all([self.model_abc(), self.model_de()]).model
        assert sorted(r.id for r in merged.reactions) == ["r1", "r2", "r3"]

    def test_sizes_add(self):
        first, second = self.model_abc(), self.model_de()
        merged = compose_all([first, second]).model
        # Shared compartment is united; species/reactions add up.
        assert merged.num_nodes() == first.num_nodes() + second.num_nodes()
        assert merged.num_edges() == first.num_edges() + second.num_edges()

    def test_compartment_united(self):
        merged, report = compose_all([self.model_abc(), self.model_de()]).pair()
        assert len(merged.compartments) == 1
        assert not report.has_conflicts()

    def test_result_valid(self):
        merged = compose_all([self.model_abc(), self.model_de()]).model
        assert validate_model(merged) == []


class TestFigure3SharedSubnetwork:
    def model_with_d(self):
        """A -> B <-> C -> D (Figure 3a)."""
        return (
            ModelBuilder("with_d")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .species("C", 0.0)
            .species("D", 0.0)
            .parameter("k1", 0.5)
            .parameter("k2", 0.3)
            .parameter("k3", 0.1)
            .parameter("k4", 0.05)
            .mass_action("r1", ["A"], ["B"], "k1")
            .mass_action("r2", ["B"], ["C"], "k2")
            .mass_action("r3", ["C"], ["B"], "k3")
            .mass_action("r4", ["C"], ["D"], "k4")
            .build()
        )

    def model_without_d(self):
        """A -> B -> C (Figure 3b), sharing A, B, C, r1, r2."""
        return (
            ModelBuilder("without_d")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .species("C", 0.0)
            .parameter("k1", 0.5)
            .parameter("k2", 0.3)
            .mass_action("r1", ["A"], ["B"], "k1")
            .mass_action("r2", ["B"], ["C"], "k2")
            .build()
        )

    def test_result_is_superset_model(self):
        merged = compose_all([self.model_with_d(), self.model_without_d()]).model
        assert sorted(s.id for s in merged.species) == ["A", "B", "C", "D"]
        assert sorted(r.id for r in merged.reactions) == [
            "r1", "r2", "r3", "r4",
        ]

    def test_matches_figure3c_size(self):
        # Figure 3(c) == Figure 3(a): the smaller model adds nothing.
        expected = self.model_with_d()
        merged = compose_all([self.model_with_d(), self.model_without_d()]).model
        assert merged.network_size() == expected.network_size()

    def test_shared_components_united(self):
        report = compose_all([self.model_with_d(), self.model_without_d()]).report
        united_species = {
            d.first_id
            for d in report.duplicates
            if d.component_type == "species"
        }
        assert united_species == {"A", "B", "C"}
        united_reactions = {
            d.first_id
            for d in report.duplicates
            if d.component_type == "reaction"
        }
        assert united_reactions == {"r1", "r2"}

    def test_order_insensitive_size(self):
        forward = compose_all([self.model_with_d(), self.model_without_d()]).model
        backward = compose_all([self.model_without_d(), self.model_with_d()]).model
        assert forward.network_size() == backward.network_size()
        assert {s.id for s in forward.species} == {
            s.id for s in backward.species
        }

    def test_result_valid(self):
        merged = compose_all([self.model_with_d(), self.model_without_d()]).model
        assert validate_model(merged) == []


class TestEmptyModelShortcut:
    """Figure 5 lines 1-2: composing with an empty model returns the
    other model."""

    def test_first_empty(self):
        empty = ModelBuilder("empty").build()
        full = figure1_model()
        merged, report = compose_all([empty, full]).pair()
        assert merged.network_size() == full.network_size()
        assert not report.duplicates

    def test_second_empty(self):
        empty = ModelBuilder("empty").build()
        full = figure1_model()
        merged = compose_all([full, empty]).model
        assert merged.network_size() == full.network_size()

    def test_both_empty(self):
        merged = compose_all([ModelBuilder("e1").build(), ModelBuilder("e2").build()]).model
        assert merged.is_empty()

    def test_inputs_not_mutated(self):
        first = figure1_model()
        second = figure1_model("other")
        before = first.component_count(), second.component_count()
        compose_all([first, second])
        assert (first.component_count(), second.component_count()) == before
