"""Parallel plan execution: equivalence with serial, thread safety.

The contract of ``workers > 1`` is that scheduling changes wall time
*only*: composed model, id mappings, provenance and step records must
be identical to serial execution of the same plan.  These tests pin
that contract for both backends, plus the concurrency regressions the
executor's shared state invites (the ``compose()`` shim's
once-per-process warning flag, sessions sharing a pool).
"""

import concurrent.futures
import importlib
import warnings

import pytest

from repro import (
    ComposeOptions,
    ComposeSession,
    ModelBuilder,
    compose,
    compose_all,
)
from repro.core.compose import AccumState
from repro.core.session import _tree_has_parallelism
from repro.errors import ConflictError

compose_module = importlib.import_module("repro.core.compose")


def _module_model(model_id, species, parameter="k", value=0.5, name=None):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for index, spec in enumerate(species):
        if isinstance(spec, tuple):
            spec_id, spec_name = spec
            builder = builder.species(spec_id, 1.0, name=spec_name)
        else:
            builder = builder.species(spec, 1.0)
    builder = builder.parameter(parameter, value)
    first = species[0][0] if isinstance(species[0], tuple) else species[0]
    last = species[-1][0] if isinstance(species[-1], tuple) else species[-1]
    builder = builder.mass_action(
        f"r_{model_id}", [first], [last], parameter
    )
    return builder.build()


@pytest.fixture
def overlapping_models():
    """Eight models with shared species, synonym unites, parameter
    clashes (renames) and an initial-value conflict — enough merge
    machinery that a scheduling bug would corrupt something."""
    models = [
        _module_model(f"m{i}", [f"S{i}", f"S{i + 1}"], parameter=f"k{i}")
        for i in range(6)
    ]
    # Same parameter id with different values: forces renames.
    models.append(_module_model("m6", ["S0", "S6"], parameter="k0", value=9.9))
    # Synonym-united species plus a conflicting initial value.
    conflicting = _module_model(
        "m7", [("glc", "glucose"), "S3"], parameter="k7"
    )
    conflicting.species[0].initial_amount = 777.0
    models.append(conflicting)
    return models


def fingerprint(result):
    """Everything the acceptance contract names: component ids,
    mappings, provenance (origins + history), and step records."""
    model = result.model
    return (
        sorted(s.id for s in model.species),
        sorted(r.id for r in model.reactions),
        sorted(p.id for p in model.parameters),
        sorted(c.id for c in model.compartments),
        result.report.mappings,
        dict(result.report.renamed),
        {
            key: (sorted(entry.origins), entry.history)
            for key, entry in result.provenance.items()
        },
        [(s.index, s.left, s.right, s.report.summary()) for s in result.steps],
    )


class TestParallelEquivalence:
    def test_thread_pool_matches_serial_tree(self, overlapping_models):
        serial = compose_all(overlapping_models, plan="tree")
        parallel = compose_all(overlapping_models, plan="tree", workers=4)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_process_pool_matches_serial_tree(self, overlapping_models):
        serial = compose_all(overlapping_models, plan="tree")
        parallel = compose_all(
            overlapping_models, plan="tree", workers=2, backend="process"
        )
        assert fingerprint(parallel) == fingerprint(serial)

    def test_workers_via_options(self, overlapping_models):
        options = ComposeOptions().parallel(3)
        serial = compose_all(overlapping_models, plan="tree")
        parallel = ComposeSession(options).compose_all(
            overlapping_models, plan="tree"
        )
        assert fingerprint(parallel) == fingerprint(serial)

    def test_left_spine_plans_unaffected_by_workers(self, overlapping_models):
        # fold/greedy have no sibling independence; workers must be a
        # no-op, not an error.
        for plan in ("fold", "greedy"):
            serial = compose_all(overlapping_models, plan=plan)
            parallel = compose_all(overlapping_models, plan=plan, workers=4)
            assert fingerprint(parallel) == fingerprint(serial), plan

    def test_odd_model_count_and_empty_model(self):
        empty = ModelBuilder("empty").build()
        models = [
            _module_model(f"m{i}", [f"S{i}", f"S{i + 1}"], parameter=f"k{i}")
            for i in range(4)
        ]
        models.insert(2, empty)
        serial = compose_all(models, plan="tree")
        parallel = compose_all(models, plan="tree", workers=4)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_step_indices_are_postorder_ranks(self, overlapping_models):
        parallel = compose_all(overlapping_models, plan="tree", workers=4)
        assert [step.index for step in parallel.steps] == list(
            range(1, len(parallel.steps) + 1)
        )

    def test_strict_conflict_raises_through_pool(self):
        a = _module_model("m1", ["A", "B"])
        b = _module_model("m2", ["B", "C"])
        c = _module_model("m3", ["A", "D"])
        c.compartments[0].size = 99.0  # size conflict on "cell"
        d = _module_model("m4", ["C", "D"])
        session = ComposeSession(ComposeOptions.heavy().strict())
        with pytest.raises(ConflictError):
            session.compose_all([a, b, c, d], plan="tree", workers=4)

    def test_invalid_workers_and_backend_rejected(self, overlapping_models):
        with pytest.raises(ValueError):
            compose_all(overlapping_models, workers=0)
        with pytest.raises(ValueError):
            compose_all(overlapping_models, backend="fiber")
        with pytest.raises(ValueError):
            ComposeOptions(workers=0)
        with pytest.raises(ValueError):
            ComposeOptions(backend="fiber")


class TestTreeParallelismDetection:
    def test_left_spine_has_none(self):
        assert not _tree_has_parallelism((((0, 1), 2), 3))

    def test_balanced_tree_has_some(self):
        assert _tree_has_parallelism(((0, 1), (2, 3)))

    def test_leaf_sibling_contributes_none(self):
        assert not _tree_has_parallelism(((0, 1), 2))


class TestIncrementalAccumState:
    def test_fold_matches_pairwise_shim_chain(self, overlapping_models):
        # The carried state (used ids / registry / initial values)
        # must reproduce exactly what per-step re-collection computed:
        # chain the deprecated pairwise engine as the oracle.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            accumulator = overlapping_models[0]
            for model in overlapping_models[1:]:
                accumulator, _ = compose(accumulator, model)
        result = compose_all(overlapping_models, plan="fold")
        assert sorted(s.id for s in result.model.species) == sorted(
            s.id for s in accumulator.species
        )
        assert sorted(p.id for p in result.model.parameters) == sorted(
            p.id for p in accumulator.parameters
        )
        assert sorted(r.id for r in result.model.reactions) == sorted(
            r.id for r in accumulator.reactions
        )

    def test_carried_initial_values_feed_conflict_checks(self):
        # m3 conflicts with a species introduced by m2: the check reads
        # the accumulator's *carried* environment, which must contain
        # m2's values under their final ids.
        m1 = _module_model("m1", ["A", "B"], parameter="k1")
        m2 = _module_model("m2", ["B", "C"], parameter="k2")
        m3 = _module_model("m3", ["C", "D"], parameter="k3")
        m3.species[0].initial_amount = 777.0  # disagrees with m2's C
        result = compose_all([m1, m2, m3], plan="fold")
        assert any(
            c.component_id == "C" and c.attribute == "initial value"
            for c in result.report.conflicts
        )

    def test_compose_step_returns_carried_state(self):
        from repro import Composer

        a = _module_model("m1", ["A", "B"], parameter="k1")
        b = _module_model("m2", ["B", "C"], parameter="k2")
        composer = Composer()
        merged, _, state = composer.compose_step(a, b)
        assert isinstance(state, AccumState)
        assert set(merged.global_ids()) <= state.used_ids
        # Values from both inputs are present under final ids.
        assert state.initial["A"] == 1.0
        assert state.initial["C"] == 1.0

    def test_united_value_conflict_not_adopted_into_state(self):
        # Regression: target species X declares no initial value, the
        # united source X declares 5.0 — a logged conflict where the
        # merged model keeps the *absent* attribute.  Re-collection
        # would bind nothing for X, so the carried env must not adopt
        # the rejected source value.
        from repro import Composer, ModelBuilder
        from repro.core.compose import _collect_initial_values

        a = (
            ModelBuilder("m1")
            .compartment("cell", size=1.0)
            .species("X", None)
            .build()
        )
        b = (
            ModelBuilder("m2")
            .compartment("cell", size=1.0)
            .species("X", 5.0)
            .build()
        )
        merged, report, state = Composer().compose_step(a, b)
        assert state.initial.get("X") == _collect_initial_values(
            merged
        ).get("X")

    def test_added_initial_assignment_overrides_in_carried_state(self):
        # A source initial assignment landing on a united symbol
        # overrides the declared value on re-collection; the carried
        # env must agree.
        from repro import Composer
        from repro.core.compose import _collect_initial_values
        from repro.mathml.infix import parse_infix
        from repro.sbml.components import InitialAssignment

        a = _module_model("m1", ["A", "B"], parameter="k1")
        b = _module_model("m2", ["B", "C"], parameter="k2")
        b.add_initial_assignment(
            InitialAssignment(symbol="B", math=parse_infix("2 + 2"))
        )
        merged, _, state = Composer().compose_step(a, b)
        recollected = _collect_initial_values(merged)
        assert state.initial.get("B") == recollected.get("B") == 4.0


class TestConcurrentSessions:
    def test_two_sessions_on_a_shared_pool(self, overlapping_models):
        # Regression (issue satellite): PatternCache, the synonym
        # memo and the session artifact memos are shared state; two
        # sessions composing concurrently must not corrupt each other.
        reference = fingerprint(compose_all(overlapping_models, plan="tree"))
        sessions = [ComposeSession() for _ in range(2)]
        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(
                    session.compose_all,
                    overlapping_models,
                    "tree",
                    workers=2,
                )
                for session in sessions
                for _ in range(2)
            ]
            results = [future.result() for future in futures]
        for result in results:
            assert fingerprint(result) == reference

    def test_shim_warns_once_across_threads(
        self, overlapping_models, monkeypatch
    ):
        monkeypatch.setattr(compose_module, "_DEPRECATION_WARNED", False)
        a, b = overlapping_models[:2]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(compose, a, b) for _ in range(16)
                ]
                for future in futures:
                    future.result()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_synonym_canonical_memo_survives_concurrent_lookup(self):
        from repro.synonyms.builtin import builtin_synonyms

        table = builtin_synonyms()
        names = ["ATP", "glucose", "adenosine triphosphate", "D-glucose"]
        expected = {name: table.canonical(name) for name in names}
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(table.canonical, name)
                for _ in range(50)
                for name in names
            ]
            for name, future in zip(names * 50, futures):
                assert future.result() == expected[name]
