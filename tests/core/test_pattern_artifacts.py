"""Sweep-level pattern artifacts and artifact-store eviction.

Covers the tentpole seeding path — per-model canonical pattern tables
computed once, stored by content digest, and seeded into each
composition's :class:`~repro.core.pattern_cache.PatternCache` — plus
the store's LRU eviction policy.
"""

import os
import time

import pytest

from repro import ComposeSession, ModelBuilder, match_all
from repro.core.artifact_store import (
    ArtifactStore,
    compute_artifacts,
    model_digest,
)
from repro.core.match_all import _PairEngine
from repro.core.pattern_cache import PatternCache, model_pattern_table
from repro.core.session import stable_labels
from repro.mathml import canonical_pattern, parse_infix


def _model(model_id="m", formula="k * A", k=0.5):
    return (
        ModelBuilder(model_id)
        .compartment("cell", size=1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .reaction("r1", ["A"], ["B"], formula=formula,
                  local_parameters={"k": k})
        .build()
    )


class TestModelPatternTable:
    def test_covers_model_math(self):
        model = _model()
        table = model_pattern_table(model)
        law = model.reactions[0].kinetic_law.math
        assert table[law.digest()] == canonical_pattern(law)

    def test_covers_law_comparison_form(self):
        # Reaction equality probes the locals-substituted law, not the
        # raw one; the table must cover that form too.
        model = _model()
        table = model_pattern_table(model)
        substituted = parse_infix("0.5 * A")
        assert table[substituted.digest()] == canonical_pattern(substituted)

    def test_pure_function_of_model(self):
        assert model_pattern_table(_model()) == model_pattern_table(_model())


class TestSeededPatternCache:
    def test_seeded_probe_is_a_hit(self):
        model = _model()
        law = model.reactions[0].kinetic_law.math

        unseeded = PatternCache()
        unseeded.pattern(law, {})
        assert unseeded.hits == 0 and unseeded.misses == 1

        seeded = PatternCache()
        seeded.seed(model_pattern_table(model))
        result = seeded.pattern(law, {})
        # Strictly more hits than the unseeded cache for the same
        # probe sequence — the satellite's invariant.
        assert seeded.hits == 1 and seeded.misses == 0
        assert seeded.hits > unseeded.hits
        assert result == canonical_pattern(law)

    def test_seeding_is_idempotent_and_lossless(self):
        table = model_pattern_table(_model())
        cache = PatternCache()
        first = cache.seed(table)
        second = cache.seed(table)
        assert first == len(table)
        assert second == 0
        assert cache.seeded == len(table)

    def test_structurally_equal_copies_share_entries(self):
        # Digest keys: a model copy's math (same objects or not) hits
        # the same entries — no per-object duplication.
        model = _model()
        clone = _model()
        cache = PatternCache()
        cache.pattern(model.reactions[0].kinetic_law.math, {})
        cache.pattern(clone.reactions[0].kinetic_law.math, {})
        assert cache.hits == 1 and cache.misses == 1

    def test_mapping_restriction_still_respected(self):
        model = _model()
        law = model.reactions[0].kinetic_law.math
        cache = PatternCache()
        cache.seed(model_pattern_table(model))
        mapped = cache.pattern(law, {"A": "glc"})
        assert mapped == canonical_pattern(law, {"A": "glc"})
        assert mapped != cache.pattern(law, {})


class TestSweepSeeding:
    def test_pair_engine_seeds_from_artifacts(self):
        models = [
            _model("a"),
            _model("b", k=0.25),
        ]
        engine = _PairEngine(None, models, stable_labels(models))
        engine.run_pairs([(0, 0), (0, 1), (1, 1)])
        assert engine.pattern_cache.seeded > 0
        # The sweep's empty-restriction probes land on seeded entries:
        # strictly more hits than a cold, unseeded cache would see.
        assert engine.pattern_cache.hits > 0

    def test_artifacts_carry_patterns_through_store(self, tmp_path):
        model = _model()
        store = ArtifactStore(tmp_path / "artifacts")
        digest = model_digest(model)
        store.put(digest, compute_artifacts(model))
        rehydrated = store.get(digest)
        assert rehydrated is not None
        assert rehydrated.patterns == model_pattern_table(model)

    def test_session_seeds_cache_from_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        a, b = _model("a"), _model("b", k=0.25)
        session = ComposeSession(artifact_store=store)
        session.compose(a, b)
        assert session._composer._cache.seeded > 0

    def test_seeding_changes_no_outcome(self, tmp_path):
        models = [_model("a"), _model("b", k=0.25), _model("c", k=0.1)]
        with_store = match_all(models, store=tmp_path / "artifacts")
        plain = match_all(models)
        assert [o.key() for o in with_store.outcomes] == [
            o.key() for o in plain.outcomes
        ]


class TestPerObjectCacheDiscipline:
    """The reaction-signature / species-key caches live on component
    objects and are only valid while those objects are unmutated.
    Ephemeral (sweep) merges uphold that; session merges adopt owned
    intermediates *in place*, so they must never write the caches —
    a stale entry would make tree plans diverge from the fold."""

    def _chain(self):
        return [
            _model("a"),
            _model("b", k=0.25),
            _model("c", k=0.1),
            _model("d", k=0.05),
        ]

    def test_session_merges_leave_no_component_caches(self):
        from repro import compose_all

        models = self._chain()
        for plan in ("fold", "tree", "greedy"):
            compose_all(models, plan=plan)
        for model in models:
            for species in model.species:
                assert "_keys_cache" not in species.__dict__
            for reaction in model.reactions:
                assert "_unmapped_signature" not in reaction.__dict__

    def test_sweep_caches_on_inputs_and_stays_correct_when_warm(self):
        models = self._chain()
        cold = match_all(models)
        # The sweep cached signatures/keys on the (unmutated) inputs...
        assert any(
            "_unmapped_signature" in r.__dict__
            for m in models for r in m.reactions
        )
        # ...and a warm rerun — and an interleaved session run over
        # the same objects — must not change a single outcome.
        from repro import compose_all

        compose_all(models, plan="tree")
        warm = match_all(models)
        assert [o.key() for o in warm.outcomes] == [
            o.key() for o in cold.outcomes
        ]

    def test_patternless_sweep_skips_pattern_tables(self):
        # With use_math_patterns off, math_key never consults the
        # cache, so the engine must not pay for per-model pattern
        # tables (no store attached — nothing to share them with).
        from repro.core.options import ComposeOptions

        models = self._chain()
        engine = _PairEngine(
            ComposeOptions(use_math_patterns=False),
            models,
            stable_labels(models),
        )
        engine.run_pairs([(0, 1), (2, 3)])
        assert engine.pattern_cache.seeded == 0


class TestEventRuleKeyCaches:
    """Events and rules get the same per-object key caches reactions
    and species have: populated by ephemeral (sweep) merges only,
    valid because the cached key is a pure function of
    ``(component, options)`` while the mapping table is empty, and
    absent from every ``copy()`` (constructor-built duplicates start
    clean)."""

    def _event_model(self, model_id="m", threshold="1", reset="0"):
        return (
            ModelBuilder(model_id)
            .compartment("cell", size=1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter(f"{model_id}_p", 1.0, constant=False)
            .assignment_rule(f"{model_id}_p", "2 * A")
            .event(f"{model_id}_e", f"A > {threshold}", {"B": reset})
            .reaction(f"{model_id}_r", ["A"], ["B"], formula="k * A",
                      local_parameters={"k": 0.5})
            .build()
        )

    def test_sweep_caches_event_and_rule_keys_on_inputs(self):
        models = [self._event_model("a"), self._event_model("b", "2")]
        cold = match_all(models)
        assert any(
            "_event_key_cache" in event.__dict__
            for model in models for event in model.events
        )
        assert any(
            "_rule_keys_cache" in rule.__dict__
            for model in models for rule in model.rules
        )
        warm = match_all(models)
        assert [o.key() for o in warm.outcomes] == [
            o.key() for o in cold.outcomes
        ]

    def test_cached_keys_are_reused_not_recomputed(self):
        from repro.core.options import ComposeOptions

        # The caches are tagged by options *identity* (like species
        # keys and reaction signatures), so reuse needs one options
        # object across sweeps — exactly how a sharded run or a
        # repeated engine drives them.
        options = ComposeOptions()
        models = [self._event_model("a"), self._event_model("b", "2")]
        match_all(models, options)
        event = models[0].events[0]
        rule = models[0].rules[0]
        tag, event_key = event.__dict__["_event_key_cache"]
        assert tag is options
        _, rule_keys = rule.__dict__["_rule_keys_cache"]
        # A second sweep serves the very same cached objects (identity,
        # not just equality — the cache-hit path returns the entry).
        match_all(models, options)
        assert event.__dict__["_event_key_cache"][1] is event_key
        assert rule.__dict__["_rule_keys_cache"][1] is rule_keys

    def test_session_merges_leave_no_event_rule_caches(self):
        from repro import compose_all

        models = [self._event_model("a"), self._event_model("b", "2")]
        for plan in ("fold", "tree", "greedy"):
            compose_all(models, plan=plan)
        for model in models:
            for event in model.events:
                assert "_event_key_cache" not in event.__dict__
            for rule in model.rules:
                assert "_rule_keys_cache" not in rule.__dict__

    def test_copy_drops_event_and_rule_caches(self):
        models = [self._event_model("a"), self._event_model("b", "2")]
        match_all(models)
        event = models[0].events[0]
        rule = models[0].rules[0]
        assert "_event_key_cache" in event.__dict__
        assert "_rule_keys_cache" in rule.__dict__
        assert "_event_key_cache" not in event.copy().__dict__
        assert "_rule_keys_cache" not in rule.copy().__dict__
        model_copy = models[0].copy()
        assert all(
            "_event_key_cache" not in e.__dict__ for e in model_copy.events
        )
        assert all(
            "_rule_keys_cache" not in r.__dict__ for r in model_copy.rules
        )

    def test_negative_zero_trigger_keys_never_collide(self):
        """Under structural math (``use_math_patterns=False``) event
        keys are digest-based, and the digest layer deliberately keeps
        ``-0.0``/``0.0`` apart — so the *cached* keys of two triggers
        differing only in the zero's sign must differ exactly like
        uncached ones, and the sweep must agree with the cache-free
        pairwise engine."""
        from repro import Composer
        from repro.core.options import ComposeOptions
        from repro.mathml.ast import Apply, Identifier, Number

        zero = self._event_model("z", threshold="0.0")
        negative = self._event_model("z2", threshold="0.0")
        negative.events[0].trigger.math = Apply(
            "gt", [Identifier("A"), Number(-0.0)]
        )
        options = ComposeOptions(use_math_patterns=False)
        matrix = match_all([zero, negative], options)
        zero_key = zero.events[0].__dict__["_event_key_cache"][1]
        negative_key = negative.events[0].__dict__["_event_key_cache"][1]
        assert zero_key != negative_key
        # Differential: the non-ephemeral engine (which never touches
        # per-object caches) reaches the same outcome for the pair.
        _, report = Composer(options).compose(zero, negative)
        cross = next(o for o in matrix.outcomes if o.i == 0 and o.j == 1)
        assert cross.united == len(report.duplicates)


class TestEviction:
    def _populate(self, store, count):
        digests = []
        for index in range(count):
            model = _model(f"m{index}", k=0.1 * (index + 1))
            digest = model_digest(model)
            store.put(digest, compute_artifacts(model))
            digests.append(digest)
        return digests

    def test_noop_without_limits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store, 3)
        assert store.evict() == 0
        assert len(store) == 3

    def test_max_entries_drops_oldest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self._populate(store, 4)
        now = time.time()
        for age, digest in zip((400, 300, 200, 100), digests):
            os.utime(store.path_for(digest), (now - age, now - age))
        assert store.evict(max_entries=2) == 2
        assert digests[0] not in store and digests[1] not in store
        assert digests[2] in store and digests[3] in store

    def test_max_age_drops_expired(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self._populate(store, 3)
        stale = time.time() - 10_000
        os.utime(store.path_for(digests[0]), (stale, stale))
        assert store.evict(max_age=3600) == 1
        assert digests[0] not in store
        assert len(store) == 2

    def test_get_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self._populate(store, 2)
        old = time.time() - 5_000
        for digest in digests:
            os.utime(store.path_for(digest), (old, old))
        # A read makes the first entry "recently used" again...
        assert store.get(digests[0]) is not None
        # ...so the LRU cut falls on the other one.
        assert store.evict(max_entries=1) == 1
        assert digests[0] in store
        assert digests[1] not in store

    def test_evicted_entry_regenerates_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = _model()
        digest = model_digest(model)
        store.put(digest, compute_artifacts(model))
        store.evict(max_entries=0)
        assert digest not in store
        artifacts = store.get_or_compute(model, digest)
        assert artifacts.patterns == model_pattern_table(model)
        assert digest in store
