"""Unit tests for the pattern cache (future-work items 6-7)."""

import pytest

from repro import Composer, ComposeOptions, ModelBuilder, compose_all
from repro.core.pattern_cache import PatternCache
from repro.eval import models_equivalent
from repro.mathml import canonical_pattern, parse_infix


class TestPatternCache:
    def test_pattern_matches_uncached(self):
        cache = PatternCache()
        math = parse_infix("k1 * A * B")
        assert cache.pattern(math, {}) == canonical_pattern(math)

    def test_mapping_restriction_applied(self):
        cache = PatternCache()
        math = parse_infix("k * A2")
        mapping = {"A2": "A1", "unrelated": "other"}
        assert cache.pattern(math, mapping) == canonical_pattern(
            math, {"A2": "A1"}
        )

    def test_irrelevant_mapping_entries_share_cache_slot(self):
        cache = PatternCache()
        math = parse_infix("k * A")
        cache.pattern(math, {})
        # A mapping that doesn't touch {k, A} must hit the same entry.
        cache.pattern(math, {"zzz": "yyy"})
        assert cache.hits == 1
        assert cache.misses == 1

    def test_relevant_mapping_entries_miss(self):
        cache = PatternCache()
        math = parse_infix("k * A")
        cache.pattern(math, {})
        cache.pattern(math, {"A": "B"})
        assert cache.misses == 2

    def test_function_calls_count_as_identifiers(self):
        cache = PatternCache()
        math = parse_infix("f(x)")
        plain = cache.pattern(math, {})
        mapped = cache.pattern(math, {"f": "g"})
        assert plain != mapped
        assert mapped == canonical_pattern(math, {"f": "g"})

    def test_law_comparison_math_cached(self):
        cache = PatternCache()
        math = parse_infix("k_loc * A")
        first = cache.law_comparison_math(math, (("k_loc", 2.0),))
        second = cache.law_comparison_math(math, (("k_loc", 2.0),))
        assert first is second  # same object: cache hit
        assert first == parse_infix("2 * A")

    def test_law_comparison_math_distinct_values(self):
        cache = PatternCache()
        math = parse_infix("k_loc * A")
        a = cache.law_comparison_math(math, (("k_loc", 2.0),))
        b = cache.law_comparison_math(math, (("k_loc", 3.0),))
        assert a != b

    def test_stats_readable(self):
        cache = PatternCache()
        cache.pattern(parse_infix("x"), {})
        assert "hits" in cache.stats()


def _pair():
    a = (
        ModelBuilder("a").compartment("cell", size=1.0)
        .species("A", 1.0).species("B", 0.0)
        .reaction("r1", ["A"], ["B"], formula="k*A",
                  local_parameters={"k": 0.5})
        .build()
    )
    b = (
        ModelBuilder("b").compartment("cell", size=1.0)
        .species("B", 0.0).species("C", 0.0)
        .reaction("r2", ["B"], ["C"], formula="k*B",
                  local_parameters={"k": 0.25})
        .build()
    )
    return a, b


class TestMemoizedComposition:
    def test_same_result_with_and_without_cache(self):
        a, b = _pair()
        cached = compose_all([a, b], options=ComposeOptions(memoize_patterns=True)).model
        plain = compose_all([a, b], options=ComposeOptions(memoize_patterns=False)).model
        assert models_equivalent(cached, plain)

    def test_shared_composer_reuses_cache_across_runs(self):
        a, b = _pair()
        composer = Composer(ComposeOptions(memoize_patterns=True))
        composer.compose(a, b)
        misses_first = composer._cache.misses
        composer.compose(a, b)
        # Second run re-patterns nothing new.
        assert composer._cache.misses == misses_first

    def test_cache_respects_growing_mapping(self):
        # Two models whose species unite under different ids: the
        # cached pattern must follow the mapping, not go stale.
        a = (
            ModelBuilder("a").compartment("cell", size=1.0)
            .species("atp", 1.0, name="ATP")
            .parameter("k", 1.0)
            .reaction("r1", ["atp"], [], formula="k * atp")
            .build()
        )
        b = (
            ModelBuilder("b").compartment("cell", size=1.0)
            .species("s9", 1.0, name="adenosine triphosphate")
            .parameter("k", 1.0)
            .reaction("r2", ["s9"], [], formula="k * s9")
            .build()
        )
        merged, report = compose_all(
            [a, b], options=ComposeOptions(memoize_patterns=True)
        ).pair()
        # s9 united with atp, and r2's law (over s9) matched r1's law
        # (over atp) through the mapping.
        assert len(merged.reactions) == 1
        assert report.mappings.get("r2") == "r1"
