"""Merge-plan invariants, cost hints and provenance guarantees."""

import pytest

from repro import ComposeOptions, ComposeSession, ModelBuilder, compose_all
from repro.core.plan import (
    BalancedTreePlan,
    GreedySimilarityPlan,
    LeftFoldPlan,
    MergePlan,
    estimate_costs,
    make_plan,
    plan_names,
)


def _module(model_id, species, formula_parameter):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder = builder.species(name, 1.0)
    builder = builder.parameter(formula_parameter, 0.5)
    builder = builder.mass_action(
        f"r_{model_id}", [species[0]], [species[-1]], formula_parameter
    )
    return builder.build()


@pytest.fixture
def model_set():
    """Four overlapping modules with collision-free parameter ids."""
    return [
        _module("m1", ["A", "B"], "k1"),
        _module("m2", ["B", "C"], "k2"),
        _module("m3", ["C", "D"], "k3"),
        _module("m4", ["A", "D"], "k4"),
    ]


class TestPlanTrees:
    def test_fold_tree_shape(self, model_set):
        tree = LeftFoldPlan().tree(model_set, ComposeOptions())
        assert tree == (((0, 1), 2), 3)

    def test_balanced_tree_shape(self, model_set):
        tree = BalancedTreePlan().tree(model_set, ComposeOptions())
        assert tree == ((0, 1), (2, 3))

    def test_balanced_tree_odd_count(self, model_set):
        tree = BalancedTreePlan().tree(model_set[:3], ComposeOptions())
        assert tree == ((0, 1), 2)

    def test_greedy_is_deterministic(self, model_set):
        options = ComposeOptions()
        plan = GreedySimilarityPlan()
        assert plan.tree(model_set, options) == plan.tree(
            model_set, options
        )

    def test_greedy_follows_overlap(self):
        # m_far shares nothing; greedy must schedule it last.
        models = [
            _module("m1", ["A", "B"], "k1"),
            _module("m_far", ["X", "Y"], "kx"),
            _module("m2", ["A", "C"], "k2"),
        ]
        tree = GreedySimilarityPlan().tree(models, ComposeOptions())
        # Left fold over an ordering; the last fold step is m_far.
        assert tree[1] == 1

    def test_empty_model_list_rejected(self):
        for plan in (
            LeftFoldPlan(),
            BalancedTreePlan(),
            GreedySimilarityPlan(),
        ):
            with pytest.raises(ValueError):
                plan.tree([], ComposeOptions())

    def test_make_plan_names_and_instances(self):
        assert isinstance(make_plan("fold"), LeftFoldPlan)
        assert isinstance(make_plan("tree"), BalancedTreePlan)
        assert isinstance(make_plan("greedy"), GreedySimilarityPlan)
        custom = GreedySimilarityPlan()
        assert make_plan(custom) is custom
        with pytest.raises(ValueError):
            make_plan("nonsense")
        assert set(plan_names()) == {"fold", "tree", "greedy"}

    def test_custom_plan_subclass_usable(self, model_set):
        class ReversedFold(MergePlan):
            name = "reversed"

            def tree(self, models, options):
                node = len(models) - 1
                for index in range(len(models) - 2, -1, -1):
                    node = (node, index)
                return node

        result = ComposeSession().compose_all(
            model_set, plan=ReversedFold()
        )
        assert result.plan == "reversed"
        assert sorted(s.id for s in result.model.species) == [
            "A", "B", "C", "D",
        ]


class TestCostModel:
    def test_leaf_sizes_are_network_sizes(self, model_set):
        tree = BalancedTreePlan().tree(model_set, ComposeOptions())
        hints = estimate_costs(tree, model_set, ComposeOptions())
        for index, model in enumerate(model_set):
            assert hints.sizes[index] == float(model.network_size())

    def test_every_merge_node_costed(self, model_set):
        options = ComposeOptions()
        tree = BalancedTreePlan().tree(model_set, options)
        hints = estimate_costs(tree, model_set, options)
        # 4 models -> 3 internal nodes, each with a positive cost.
        assert len(hints.costs) == 3
        assert all(cost > 0 for cost in hints.costs.values())

    def test_overlap_shrinks_size_estimate(self):
        def module(model_id, species):
            builder = ModelBuilder(model_id).compartment("cell", size=1.0)
            for name in species:
                builder = builder.species(name, 1.0)
            return builder.build()

        options = ComposeOptions()
        disjoint = [module("d1", ["A", "B"]), module("d2", ["C", "D"])]
        identical = [module("i1", ["A", "B"]), module("i2", ["A", "B"])]
        disjoint_hints = estimate_costs((0, 1), disjoint, options)
        identical_hints = estimate_costs((0, 1), identical, options)
        assert identical_hints.sizes[(0, 1)] < disjoint_hints.sizes[(0, 1)]

    def test_critical_path_grows_toward_root(self, model_set):
        options = ComposeOptions()
        tree = BalancedTreePlan().tree(model_set, options)
        hints = estimate_costs(tree, model_set, options)
        left, right = tree
        assert hints.critical[tree] > hints.critical[left]
        assert hints.critical[tree] > hints.critical[right]
        assert hints.priority(tree) == hints.critical[tree]
        assert hints.priority(0) == 0.0  # leaves carry no merge cost

    def test_deep_fold_tree_does_not_recurse(self):
        models = [
            ModelBuilder(f"m{i}").compartment("cell", size=1.0)
            .species(f"S{i}", 1.0).build()
            for i in range(1200)
        ]
        options = ComposeOptions()
        tree = LeftFoldPlan().tree(models, options)
        hints = estimate_costs(tree, models, options)
        assert len(hints.costs) == 1199


class TestPlanInvariants:
    def test_all_plans_permutation_equivalent(self, model_set):
        results = {
            plan: compose_all(model_set, plan=plan)
            for plan in plan_names()
        }
        species_sets = {
            plan: sorted(s.id for s in result.model.species)
            for plan, result in results.items()
        }
        reaction_sets = {
            plan: sorted(r.id for r in result.model.reactions)
            for plan, result in results.items()
        }
        reference_species = species_sets["fold"]
        reference_reactions = reaction_sets["fold"]
        for plan in plan_names():
            assert species_sets[plan] == reference_species, plan
            assert reaction_sets[plan] == reference_reactions, plan

    def test_plans_equivalent_under_input_permutation(self, model_set):
        reordered = [model_set[2], model_set[0], model_set[3], model_set[1]]
        straight = compose_all(model_set, plan="greedy")
        shuffled = compose_all(reordered, plan="greedy")
        assert sorted(s.id for s in straight.model.species) == sorted(
            s.id for s in shuffled.model.species
        )


class TestProvenance:
    def test_every_component_maps_to_an_input(self, model_set):
        labels = {model.id for model in model_set}
        inputs = {model.id: set(model.global_ids()) for model in model_set}
        for plan in plan_names():
            result = compose_all(model_set, plan=plan)
            composed_ids = set(result.model.global_ids())
            assert set(result.provenance) == composed_ids, plan
            for entry in result.provenance.values():
                assert entry.origins, entry.id
                for label, original in entry.origins:
                    assert label in labels
                    assert original in inputs[label]

    def test_united_component_lists_all_origins(self, model_set):
        result = compose_all(model_set)
        origins = dict(result.provenance["B"].origins)
        assert origins == {"m1": "B", "m2": "B"}

    def test_rename_recorded_in_history(self):
        # Two constant parameters named k with different values: the
        # second is renamed, and provenance records the chain.
        a = _module("m1", ["A", "B"], "k")
        b = _module("m2", ["B", "C"], "k")
        b.parameters[0].value = 123.0
        result = compose_all([a, b])
        renamed = [
            entry
            for entry in result.provenance.values()
            if entry.origins == [("m2", "k")]
        ]
        assert len(renamed) == 1
        entry = renamed[0]
        assert entry.id != "k"
        assert entry.history[0] == "k"
        assert entry.history[-1] == entry.id
        assert result.report.mappings["k"] == entry.id

    def test_unite_and_rename_colliding_on_one_id(self):
        # Regression: source species "S2" unites into target id "glc"
        # by synonym while an unrelated source *parameter* "glc" is
        # renamed to "glc_m2".  The step report holds
        # {'S2': 'glc', 'glc': 'glc_m2'}; provenance must resolve each
        # source id exactly one hop, not walk S2 -> glc -> glc_m2.
        a = (
            ModelBuilder("m1")
            .compartment("cell", size=1.0)
            .species("glc", 1.0, name="glucose")
            .build()
        )
        b = (
            ModelBuilder("m2")
            .compartment("cell", size=1.0)
            .species("S2", 1.0, name="D-glucose")
            .parameter("glc", 7.0)
            .build()
        )
        result = compose_all([a, b])
        assert sorted(result.provenance["glc"].origins) == [
            ("m1", "glc"),
            ("m2", "S2"),
        ]
        assert result.provenance["glc_m2"].origins == [("m2", "glc")]
        assert "glc_m2 <- m2:glc" in result.provenance_log()

    def test_provenance_log_lines(self, model_set):
        result = compose_all(model_set)
        log = result.provenance_log()
        assert "PROVENANCE" in log
        assert "m1:A" in log
