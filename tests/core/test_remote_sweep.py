"""Remote socket workers under the sweep coordinator.

Real processes, real TCP (loopback), deterministic chaos: these tests
spawn ``sbmlcompose worker`` subprocesses against a listening
coordinator and pin the promises the remote boundary makes — a worker
with an *empty* local store completes shards through digest-fetch
alone, a remote death mid-shard is stolen and retried exactly like a
local pipe-worker death, a coordinator without a manifest refuses
remote workers at the handshake, and a chaos-dropped accept kills only
the dropped worker.
"""

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core import chaos
from repro.core import transport
from repro.core.artifact_store import corpus_fingerprint
from repro.core.coordinator import CoordinatorConfig, SweepCoordinator
from repro.core.match_all import match_all
from repro.corpus.curated import (
    drug_inhibition,
    glycolysis_lower,
    glycolysis_upper,
    mapk_cascade,
)

SHARDS = 3
SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def corpus():
    return [
        glycolysis_upper(),
        glycolysis_lower(),
        mapk_cascade(),
        drug_inhibition(),
    ]


@pytest.fixture(scope="module")
def fingerprint(corpus):
    return corpus_fingerprint(corpus, extra=("shards", SHARDS))


@pytest.fixture(scope="module")
def reference_keys(corpus):
    matrix = match_all(corpus)
    return {(o.i, o.j): o.key() for o in matrix.outcomes}


def _coordinator(corpus, fingerprint, out_dir, **kwargs):
    config = dict(
        workers=1,
        worker_timeout=15.0,
        poll_interval=0.05,
        backoff_base=0.05,
        backoff_cap=0.2,
    )
    for key in list(kwargs):
        if key in config:
            config[key] = kwargs.pop(key)
    return SweepCoordinator(
        corpus,
        None,
        shards=SHARDS,
        out_dir=out_dir,
        fingerprint=fingerprint,
        config=CoordinatorConfig(**config),
        progress=False,
        listen=("127.0.0.1", 0),
        **kwargs,
    )


def _spawn_worker(port, store=None, **popen_kwargs):
    """One ``sbmlcompose worker`` subprocess dialed at the
    coordinator.  Inherits the environment, so a spec armed with
    ``chaos.active`` (which publishes ``REPRO_CHAOS``) arms the remote
    worker identically."""
    env = dict(os.environ, PYTHONPATH=SRC)
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        f"127.0.0.1:{port}",
    ]
    if store is not None:
        argv += ["--store", str(store)]
    return subprocess.Popen(argv, env=env, **popen_kwargs)


def _computed_keys(report):
    return {
        (o.i, o.j): o.key()
        for matrix in report.matrices
        for o in matrix.outcomes
    }


def _reap(procs, timeout=60):
    codes = []
    for proc in procs:
        try:
            codes.append(proc.wait(timeout=timeout))
        except subprocess.TimeoutExpired:
            proc.kill()
            codes.append(proc.wait())
    return codes


class TestDigestFetch:
    def test_empty_store_worker_completes_sweep(
        self, corpus, fingerprint, reference_keys, tmp_path
    ):
        # Listen-only coordinator: every pair is computed by a remote
        # worker whose local store starts EMPTY — the corpus crosses
        # the wire exclusively as digest-fetch replies.
        coordinator = _coordinator(
            corpus, fingerprint, tmp_path / "sweep", local_workers=0
        )
        _, port = coordinator.listen_address
        store = tmp_path / "worker-store"
        proc = _spawn_worker(port, store=store)
        try:
            report = coordinator.run()
        finally:
            (code,) = _reap([proc])
        assert report.exit_code == 0
        assert code == 0
        assert _computed_keys(report) == reference_keys
        # The fetch path really ran: every corpus model is now cached
        # in the worker's own store.
        assert len(list(store.rglob("*.pkl"))) >= len(corpus)

    def test_listen_only_without_listen_rejected(self, corpus, fingerprint, tmp_path):
        with pytest.raises(ValueError):
            SweepCoordinator(
                corpus,
                None,
                shards=SHARDS,
                out_dir=tmp_path / "sweep",
                fingerprint=fingerprint,
                config=CoordinatorConfig(workers=1),
                local_workers=0,
            )


class TestRemoteDeath:
    def test_remote_death_mid_shard_is_stolen_like_local(
        self, corpus, fingerprint, reference_keys, tmp_path
    ):
        # The exact fault of the local steal test
        # (test_coordinator.py::test_killed_worker_shard_is_stolen_and_completes),
        # now fired inside a remote worker: SIGKILL on pair (0, 1),
        # once.  Two remote workers, so whichever one dies, the other
        # steals the shard and the sweep completes with identical rows.
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="pair-start",
                    action="kill",
                    match={"i": 0, "j": 1},
                    times=1,
                    key="kill-once",
                )
            ],
        )
        coordinator = _coordinator(corpus, fingerprint, out, local_workers=0)
        _, port = coordinator.listen_address
        with chaos.active(spec):
            procs = [_spawn_worker(port), _spawn_worker(port)]
            try:
                report = coordinator.run()
            finally:
                codes = _reap(procs)
        assert report.exit_code == 0
        assert report.steals == 1
        assert report.retries >= 1
        assert not report.quarantined
        assert _computed_keys(report) == reference_keys
        # One worker died by SIGKILL; the survivor stopped cleanly.
        assert sorted(codes) == [-9, 0]


class TestHandshakeRejection:
    def test_manifestless_coordinator_rejects_remote(
        self, corpus, fingerprint, tmp_path
    ):
        # Digest shipping off => no manifest => a remote worker has no
        # way to obtain models; the coordinator must refuse it at the
        # handshake with a reason, while the local sweep proceeds.
        out = tmp_path / "sweep"
        out.mkdir()
        # Stall the local worker's first chunk so the sweep is still
        # alive while we dial in from this thread.
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="chunk-start",
                    action="stall",
                    match={"worker": "w1"},
                    stall_seconds=3.0,
                    times=1,
                    key="hold-open",
                )
            ],
        )
        coordinator = _coordinator(
            corpus, fingerprint, out, digest_shipping=False
        )
        _, port = coordinator.listen_address
        result = {}

        def sweep():
            result["report"] = coordinator.run()

        with chaos.active(spec):
            thread = threading.Thread(target=sweep)
            thread.start()
            try:
                conn = transport.connect("127.0.0.1", port)
                try:
                    with pytest.raises(transport.HandshakeError) as excinfo:
                        transport.client_handshake(
                            conn, host="box-b", pid=os.getpid(), has_store=False
                        )
                finally:
                    conn.close()
            finally:
                thread.join(timeout=120)
        assert "digest shipping" in str(excinfo.value)
        assert result["report"].exit_code == 0

    def test_net_accept_drop_kills_only_the_dropped_worker(
        self, corpus, fingerprint, reference_keys, tmp_path
    ):
        # A chaos-dropped accept: the victim's handshake dies cleanly
        # (exit 2, with a reason on stderr), the other worker is
        # untouched and finishes the sweep.
        out = tmp_path / "sweep"
        out.mkdir()
        spec = chaos.ChaosSpec(
            out,
            faults=[
                chaos.Fault(
                    site="net-accept",
                    action="drop",
                    times=1,
                    key="drop-one",
                )
            ],
        )
        coordinator = _coordinator(corpus, fingerprint, out, local_workers=0)
        _, port = coordinator.listen_address
        with chaos.active(spec):
            procs = [
                _spawn_worker(port, stderr=subprocess.PIPE),
                _spawn_worker(port, stderr=subprocess.PIPE),
            ]
            try:
                report = coordinator.run()
            finally:
                codes = _reap(procs)
        stderrs = [proc.stderr.read().decode() for proc in procs]
        for proc in procs:
            proc.stderr.close()
        assert report.exit_code == 0
        assert _computed_keys(report) == reference_keys
        assert sorted(codes) == [0, 2]
        dropped = stderrs[codes.index(2)]
        assert "handshake failed" in dropped
