"""Semantics modes and index strategies (paper §5 future work).

The paper proposes comparing composition under heavy semantics (the
shipped method), light semantics, and no semantics.  These tests pin
down what each mode may and may not match.
"""

import pytest

from repro import ModelBuilder, ComposeOptions, compose_all


def model_atp(model_id, species_id, species_name):
    return (
        ModelBuilder(model_id)
        .compartment("cell", size=1.0)
        .species(species_id, 1.0, name=species_name)
        .build()
    )


class TestHeavySemantics:
    def test_synonyms_matched(self):
        merged = compose_all(
            [
                model_atp("a", "atp", "ATP"),
                model_atp("b", "x1", "adenosine triphosphate"),
            ],
            options=ComposeOptions(semantics="heavy"),
        ).model
        assert len(merged.species) == 1

    def test_commutative_math_matched(self):
        a = (
            ModelBuilder("a").compartment("c").species("A", 1.0)
            .parameter("k", 1.0).reaction("r1", ["A"], [], formula="k*A")
            .build()
        )
        b = (
            ModelBuilder("b").compartment("c").species("A", 1.0)
            .parameter("k", 1.0).reaction("r2", ["A"], [], formula="A*k")
            .build()
        )
        merged = compose_all([a, b], options=ComposeOptions(semantics="heavy")).model
        assert len(merged.reactions) == 1


class TestLightSemantics:
    def test_exact_ids_still_match(self):
        merged = compose_all(
            [
                model_atp("a", "atp", None),
                model_atp("b", "atp", None),
            ],
            options=ComposeOptions(semantics="light"),
        ).model
        assert len(merged.species) == 1

    def test_synonyms_not_matched(self):
        merged = compose_all(
            [
                model_atp("a", "atp", "ATP"),
                model_atp("b", "x1", "adenosine triphosphate"),
            ],
            options=ComposeOptions(semantics="light"),
        ).model
        assert len(merged.species) == 2

    def test_case_differences_not_matched(self):
        merged = compose_all(
            [
                model_atp("a", "s1", "ATP"),
                model_atp("b", "s2", "atp"),
            ],
            options=ComposeOptions(semantics="light"),
        ).model
        assert len(merged.species) == 2

    def test_unit_conversion_disabled(self):
        a = (
            ModelBuilder("a").compartment("cell", size=1.0, units="litre")
            .build()
        )
        b = (
            ModelBuilder("b")
            .unit("ml", [("litre", 1, -3, 1.0)])
            .compartment("cell", size=1000.0, units="ml")
            .build()
        )
        options = ComposeOptions(semantics="light", convert_units=False)
        report = compose_all([a, b], options=options).report
        assert report.has_conflicts()  # no conversion: sizes conflict

    def test_commutative_math_not_matched_without_patterns(self):
        a = (
            ModelBuilder("a").compartment("c").species("A", 1.0)
            .species("B", 1.0).parameter("k", 1.0)
            .reaction("r1", ["A", "B"], [], formula="k*A*B")
            .build()
        )
        b = (
            ModelBuilder("b").compartment("c").species("A", 1.0)
            .species("B", 1.0).parameter("k", 1.0)
            .reaction("r2", ["A", "B"], [], formula="B*k*A")
            .build()
        )
        options = ComposeOptions(semantics="light", use_math_patterns=False)
        merged, report = compose_all([a, b], options=options).pair()
        # Same structure so the reaction is united, but the laws are
        # *not* recognised as equal: a conflict is logged.
        assert len(merged.reactions) == 1
        assert report.has_conflicts()


class TestNoSemantics:
    def test_nothing_matched(self):
        merged, report = compose_all(
            [
                model_atp("a", "atp", None),
                model_atp("b", "atp", None),
            ],
            options=ComposeOptions(semantics="none"),
        ).pair()
        # Pure structural union: even identical ids are kept apart.
        assert len(merged.species) == 2
        assert "atp" in report.renamed

    def test_size_is_sum(self):
        a = (
            ModelBuilder("a").compartment("c").species("A", 1.0)
            .parameter("k", 1.0).mass_action("r", ["A"], [], "k")
            .build()
        )
        merged = compose_all([a, a.copy()], options=ComposeOptions(semantics="none")).model
        assert merged.num_nodes() == 2 * a.num_nodes()
        assert len(merged.reactions) == 2 * len(a.reactions)


class TestIndexStrategiesProduceSameResult:
    @pytest.mark.parametrize("index", ["hash", "linear", "sorted"])
    def test_same_composition(self, index):
        a = (
            ModelBuilder("a").compartment("cell", size=1.0)
            .species("A", 1.0).species("B", 0.0)
            .parameter("k1", 0.5)
            .mass_action("r1", ["A"], ["B"], "k1")
            .build()
        )
        b = (
            ModelBuilder("b").compartment("cell", size=1.0)
            .species("B", 0.0).species("C", 0.0)
            .parameter("k2", 0.3)
            .mass_action("r2", ["B"], ["C"], "k2")
            .build()
        )
        merged, report = compose_all([a, b], options=ComposeOptions(index=index)).pair()
        assert sorted(s.id for s in merged.species) == ["A", "B", "C"]
        assert sorted(r.id for r in merged.reactions) == ["r1", "r2"]
        assert len(merged.compartments) == 1


class TestOptionValidation:
    def test_bad_semantics(self):
        with pytest.raises(ValueError):
            ComposeOptions(semantics="extreme")

    def test_bad_index(self):
        with pytest.raises(ValueError):
            ComposeOptions(index="quantum")

    def test_bad_conflicts(self):
        with pytest.raises(ValueError):
            ComposeOptions(conflicts="ignore")

    def test_values_equal_tolerance(self):
        options = ComposeOptions(value_tolerance=1e-6)
        assert options.values_equal(1.0, 1.0 + 1e-9)
        assert not options.values_equal(1.0, 1.01)
