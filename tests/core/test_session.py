"""ComposeSession / compose_all and the legacy-API shim."""

import dataclasses
import warnings

import pytest

from repro import (
    ComposeOptions,
    ComposeSession,
    ModelBuilder,
    compose,
    compose_all,
)
import importlib

# ``repro.core``'s re-export shadows the submodule attribute, so
# resolve the module itself for the deprecation-flag monkeypatch.
compose_module = importlib.import_module("repro.core.compose")
from repro.errors import ConflictError


def _chain_model(model_id, species, k_value=0.5):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder = builder.species(name, 1.0)
    builder = builder.parameter(f"k_{model_id}", k_value)
    builder = builder.mass_action(
        f"r_{model_id}", [species[0]], [species[-1]], f"k_{model_id}"
    )
    return builder.build()


@pytest.fixture
def ab_models():
    a = _chain_model("m1", ["A", "B"])
    b = _chain_model("m2", ["B", "C"])
    return a, b


class TestLegacyShim:
    def test_shim_matches_compose_all(self, ab_models):
        a, b = ab_models
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_model, legacy_report = compose(a, b)
        result = compose_all([a, b])
        assert sorted(s.id for s in legacy_model.species) == sorted(
            s.id for s in result.model.species
        )
        assert sorted(r.id for r in legacy_model.reactions) == sorted(
            r.id for r in result.model.reactions
        )
        assert legacy_report.summary() == result.report.summary()
        assert legacy_report.mappings == result.report.mappings

    def test_shim_does_not_mutate_inputs(self, ab_models):
        a, b = ab_models
        before = sorted(s.id for s in a.species)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            compose(a, b)
        assert sorted(s.id for s in a.species) == before

    def test_deprecation_warning_emitted_exactly_once(
        self, ab_models, monkeypatch
    ):
        a, b = ab_models
        monkeypatch.setattr(compose_module, "_DEPRECATION_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            compose(a, b)
            compose(a, b)
            compose(a, b)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "compose_all" in str(deprecations[0].message)

    def test_shim_respects_options(self, ab_models):
        a = _chain_model("m1", ["A", "B"], k_value=0.5)
        b = _chain_model("m1", ["A", "B"], k_value=0.5)
        b.compartments[0].size = 99.0  # size conflict on "cell"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConflictError):
                compose(a, b, ComposeOptions().strict())


class TestFluentOptions:
    @staticmethod
    def _fields_except_synonyms(options):
        return {
            f.name: getattr(options, f.name)
            for f in dataclasses.fields(options)
            if f.name != "synonyms"
        }

    def test_heavy_equals_dataclass_spelling(self):
        fluent = ComposeOptions.heavy()
        spelled = ComposeOptions(semantics="heavy")
        # builtin_synonyms() is a fresh instance per table by
        # contract, so compare every other field.
        assert self._fields_except_synonyms(
            fluent
        ) == self._fields_except_synonyms(spelled)
        assert fluent.synonyms is not None and spelled.synonyms is not None

    def test_light_and_structural_equal_dataclass_spellings(self):
        assert ComposeOptions.light() == ComposeOptions(semantics="light")
        assert ComposeOptions.structural() == ComposeOptions(
            semantics="none"
        )

    def test_with_index_and_strict(self):
        options = ComposeOptions.light().with_index("sorted").strict()
        assert options == ComposeOptions(
            semantics="light", index="sorted", conflicts="error"
        )

    def test_fluent_methods_do_not_mutate_receiver(self):
        base = ComposeOptions.light()
        base.strict()
        base.with_index("linear")
        assert base.conflicts == "warn"
        assert base.index == "hash"

    def test_overrides_pass_through(self):
        options = ComposeOptions.heavy(value_tolerance=1e-3)
        assert options.value_tolerance == 1e-3
        assert options.semantics == "heavy"


class TestComposeSession:
    def test_single_model_copies(self, ab_models):
        a, _ = ab_models
        result = ComposeSession().compose_all([a])
        assert result.model is not a
        assert sorted(s.id for s in result.model.species) == sorted(
            s.id for s in a.species
        )
        assert result.steps == []

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            ComposeSession().compose_all([])

    def test_inputs_never_mutated(self):
        models = [
            _chain_model("m1", ["A", "B"]),
            _chain_model("m2", ["B", "C"]),
            _chain_model("m3", ["C", "D"]),
        ]
        snapshots = [sorted(m.global_ids()) for m in models]
        ComposeSession().compose_all(models, plan="greedy")
        assert [sorted(m.global_ids()) for m in models] == snapshots

    def test_session_reusable_across_calls(self, ab_models):
        a, b = ab_models
        session = ComposeSession()
        first = session.compose(a, b)
        second = session.compose(a, b)
        assert sorted(s.id for s in first.model.species) == sorted(
            s.id for s in second.model.species
        )

    def test_result_carries_steps_and_timings(self):
        models = [
            _chain_model("m1", ["A", "B"]),
            _chain_model("m2", ["B", "C"]),
            _chain_model("m3", ["C", "D"]),
        ]
        result = ComposeSession().compose_all(models)
        assert len(result.steps) == 2
        assert result.steps[0].index == 1
        assert result.steps[0].left == "m1"
        assert result.steps[0].right == "m2"
        assert result.seconds > 0
        # Per-phase timings are summed across both steps.
        assert "species" in result.timings
        assert "reactions" in result.timings

    def test_merged_report_accumulates(self):
        models = [
            _chain_model("m1", ["A", "B"]),
            _chain_model("m2", ["B", "C"]),
            _chain_model("m3", ["C", "D"]),
        ]
        result = ComposeSession().compose_all(models)
        per_step_added = sum(
            step.report.total_added for step in result.steps
        )
        assert result.report.total_added == per_step_added
        per_step_duplicates = sum(
            len(step.report.duplicates) for step in result.steps
        )
        assert len(result.report.duplicates) == per_step_duplicates

    def test_duplicate_model_ids_get_unique_labels(self):
        a = _chain_model("same", ["A", "B"])
        b = _chain_model("same", ["B", "C"])
        result = ComposeSession().compose_all([a, b])
        labels = {result.steps[0].left, result.steps[0].right}
        assert labels == {"same", "same#2"}

    def test_strict_session_raises_on_conflict(self):
        a = _chain_model("m1", ["A", "B"])
        b = _chain_model("m2", ["A", "B"])
        b.compartments[0].size = 99.0
        session = ComposeSession(ComposeOptions.heavy().strict())
        with pytest.raises(ConflictError):
            session.compose_all([a, b])

    def test_empty_model_in_chain(self):
        empty = ModelBuilder("empty").build()
        a = _chain_model("m1", ["A", "B"])
        result = ComposeSession().compose_all([empty, a])
        assert sorted(s.id for s in result.model.species) == ["A", "B"]
        assert result.provenance["A"].origins == [("m1", "A")]

    def test_deep_fold_does_not_recurse(self):
        # A left-spine plan tree over 1200 models is 1200 levels deep;
        # the executor must not hit the interpreter recursion limit.
        models = [
            _chain_model(f"m{i}", [f"S{i}", f"S{i + 1}"])
            for i in range(1200)
        ]
        result = ComposeSession().compose_all(models, plan="fold")
        assert len(result.steps) == 1199
        assert len(result.model.species) == 1201

    def test_invalidate_refreshes_mutated_input(self):
        a = _chain_model("m1", ["A", "B"])
        b = _chain_model("m2", ["A", "B"])
        session = ComposeSession()
        first = session.compose(a, b)
        assert not first.report.conflicts
        # Mutate b's initial value; the memoised initial-value env is
        # stale until invalidated.
        b.species[0].initial_amount = 777.0
        session.invalidate(b)
        second = session.compose(a, b)
        assert any(
            c.attribute == "initial value" for c in second.report.conflicts
        )

    def test_invalidate_all_clears_pins(self):
        a = _chain_model("m1", ["A", "B"])
        b = _chain_model("m2", ["B", "C"])
        session = ComposeSession()
        session.compose(a, b)
        assert session._pinned
        session.invalidate()
        assert not session._pinned
        # Session still works after a full reset.
        result = session.compose(a, b)
        assert sorted(s.id for s in result.model.species) == ["A", "B", "C"]
