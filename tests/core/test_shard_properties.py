"""Property tests: sharding is invisible in the sweep's output.

For any generated corpus, any shard count and any shard *completion
order*, the union of ``match_all_sharded`` results equals the
unsharded ``match_all`` on every run-invariant field.  The corpora
come from the BioModels-like generator so the property is exercised
on the component mix the engine actually faces (overlapping species
pools, mixed kinetics, rules, events), not just toy models.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.match_all import MatchMatrix, match_all, match_all_sharded
from repro.core.shards import enumerate_pairs, partition_pairs
from repro.corpus.biomodels_like import generate_model


def _corpus(seed: int, count: int):
    """A small deterministic corpus from the BioModels-like generator
    (node counts kept small so hundreds of examples stay fast)."""
    rng = np.random.default_rng(seed)
    return [
        generate_model(index, int(rng.integers(0, 9)), rng)
        for index in range(count)
    ]


@st.composite
def shard_runs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**20))
    count = draw(st.integers(min_value=1, max_value=6))
    shard_count = draw(st.integers(min_value=1, max_value=7))
    order = draw(st.permutations(list(range(shard_count))))
    include_self = draw(st.booleans())
    return seed, count, shard_count, order, include_self


@given(shard_runs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_shard_union_equals_match_all(run):
    seed, count, shard_count, order, include_self = run
    models = _corpus(seed, count)
    reference = match_all(models, include_self=include_self)
    parts = [
        match_all_sharded(
            models,
            shards=shard_count,
            shard_id=shard_id,
            include_self=include_self,
        )
        for shard_id in order  # completion order must not matter
    ]
    merged = MatchMatrix.union(parts)
    assert [o.key() for o in merged.outcomes] == [
        o.key() for o in reference.outcomes
    ]


@given(
    sizes=st.lists(
        st.integers(min_value=0, max_value=500), min_size=0, max_size=40
    ),
    shard_count=st.integers(min_value=1, max_value=7),
    include_self=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_partition_is_exact_cover(sizes, shard_count, include_self):
    """Every pair lands in exactly one shard, whatever the sizes."""
    shards = partition_pairs(sizes, shard_count, include_self=include_self)
    assert len(shards) == shard_count
    union = [pair for shard in shards for pair in shard.pairs]
    assert sorted(union) == enumerate_pairs(len(sizes), include_self)
    assert len(union) == len(set(union))
