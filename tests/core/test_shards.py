"""Deterministic pair-matrix sharding + the sweep checkpoint journal."""

import json

import pytest

from repro.core.shards import (
    Shard,
    SweepCheckpoint,
    SweepStateError,
    enumerate_pairs,
    pair_cost,
    partition_pairs,
    shard_result_filename,
)


class TestEnumeratePairs:
    def test_canonical_order(self):
        assert enumerate_pairs(3) == [
            (0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2),
        ]

    def test_no_self(self):
        assert enumerate_pairs(3, include_self=False) == [
            (0, 1), (0, 2), (1, 2),
        ]

    def test_counts(self):
        n = 187
        assert len(enumerate_pairs(n)) == n * (n + 1) // 2  # 17,578
        assert len(enumerate_pairs(n, include_self=False)) == n * (n - 1) // 2


class TestPartitionPairs:
    def test_exact_cover(self):
        sizes = list(range(1, 12))
        for shard_count in (1, 2, 3, 7):
            shards = partition_pairs(sizes, shard_count)
            union = [pair for shard in shards for pair in shard.pairs]
            assert sorted(union) == enumerate_pairs(len(sizes))

    def test_single_shard_is_canonical_order(self):
        sizes = [3, 1, 4, 1, 5]
        (shard,) = partition_pairs(sizes, 1)
        assert list(shard.pairs) == enumerate_pairs(len(sizes))

    def test_deterministic(self):
        sizes = [7, 2, 9, 4, 6, 1]
        assert partition_pairs(sizes, 3) == partition_pairs(sizes, 3)

    def test_within_shard_order_is_canonical(self):
        sizes = list(range(2, 20))
        for shard in partition_pairs(sizes, 4):
            assert list(shard.pairs) == sorted(shard.pairs)

    def test_cost_balance(self):
        # Size-sorted corpus: late pairs dwarf early ones — the exact
        # regime block-cyclic dealing exists for.  Every shard must
        # land within 2x of the mean estimated cost.
        sizes = [i ** 2 for i in range(1, 40)]
        shards = partition_pairs(sizes, 5)
        mean = sum(shard.cost for shard in shards) / len(shards)
        for shard in shards:
            assert shard.cost < 2 * mean
            assert shard.cost > mean / 2

    def test_more_shards_than_pairs(self):
        shards = partition_pairs([5, 5], 7, include_self=False)
        assert len(shards) == 7
        assert sum(shard.pair_count for shard in shards) == 1

    def test_empty_corpus(self):
        shards = partition_pairs([], 3)
        assert all(shard.pair_count == 0 for shard in shards)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_pairs([1, 2], 0)

    def test_shard_metadata(self):
        shards = partition_pairs([4, 4, 4], 2)
        assert [shard.shard_id for shard in shards] == [0, 1]
        assert all(shard.shard_count == 2 for shard in shards)
        assert all(
            isinstance(shard, Shard) and "shard" in shard.describe()
            for shard in shards
        )

    def test_cost_mirrors_plan_cost_model(self):
        assert pair_cost(10, 20) == 30.0
        assert pair_cost(0, 0) == 1.0  # floor, as in estimate_costs


class TestSweepCheckpoint:
    def _checkpoint(self, tmp_path, fingerprint="f1", shard_count=3):
        return SweepCheckpoint(
            tmp_path, fingerprint=fingerprint, shard_count=shard_count
        )

    def test_fresh_begin_is_empty(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        assert checkpoint.begin() == {}
        assert checkpoint.path.is_file()
        assert checkpoint.missing_shards() == [0, 1, 2]

    def test_mark_complete_and_resume(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        checkpoint.mark_complete(0, "shard-0.csv", 10)
        checkpoint.mark_complete(2, "shard-2.csv", 12)
        resumed = self._checkpoint(tmp_path)
        completed = resumed.begin(resume=True)
        assert completed == {0: "shard-0.csv", 2: "shard-2.csv"}
        assert resumed.missing_shards() == [1]

    def test_begin_without_resume_resets(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        checkpoint.mark_complete(1, "shard-1.csv", 5)
        fresh = self._checkpoint(tmp_path)
        assert fresh.begin(resume=False) == {}
        assert fresh.missing_shards() == [0, 1, 2]

    def test_resume_rejects_fingerprint_mismatch(self, tmp_path):
        self._checkpoint(tmp_path, fingerprint="f1").begin()
        other = self._checkpoint(tmp_path, fingerprint="f2")
        with pytest.raises(SweepStateError):
            other.begin(resume=True)

    def test_resume_rejects_shard_count_mismatch(self, tmp_path):
        self._checkpoint(tmp_path, shard_count=3).begin()
        other = self._checkpoint(tmp_path, shard_count=4)
        with pytest.raises(SweepStateError):
            other.begin(resume=True)

    def test_resume_onto_empty_directory(self, tmp_path):
        # --resume on a fresh out-dir just starts from zero.
        checkpoint = self._checkpoint(tmp_path / "new")
        assert checkpoint.begin(resume=True) == {}

    def test_read_journal_missing(self, tmp_path):
        with pytest.raises(SweepStateError):
            SweepCheckpoint.read_journal(tmp_path)

    def test_read_journal_corrupt(self, tmp_path):
        (tmp_path / SweepCheckpoint.FILENAME).write_text("{not json")
        with pytest.raises(SweepStateError):
            SweepCheckpoint.read_journal(tmp_path)

    def test_read_journal_missing_keys(self, tmp_path):
        (tmp_path / SweepCheckpoint.FILENAME).write_text("{}")
        with pytest.raises(SweepStateError):
            SweepCheckpoint.read_journal(tmp_path)

    def test_journal_rewrite_is_atomic(self, tmp_path):
        # No stray temp files survive a successful rewrite.
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        checkpoint.mark_complete(0, "shard-0.csv", 1)
        leftovers = [
            p for p in tmp_path.iterdir() if p.name.startswith(".checkpoint-")
        ]
        assert leftovers == []


class TestShardResultFilename:
    def test_zero_padded_and_sortable(self):
        assert shard_result_filename(0, 3) == "shard-0000-of-0003.csv"
        assert shard_result_filename(12, 128) == "shard-0012-of-0128.csv"
        names = [shard_result_filename(i, 11) for i in range(11)]
        assert names == sorted(names)


class TestJournalFormat2:
    """Leases, retry counters, the format version, and the backup."""

    def _checkpoint(self, tmp_path, fingerprint="f1", shard_count=3):
        return SweepCheckpoint(
            tmp_path, fingerprint=fingerprint, shard_count=shard_count
        )

    def test_writer_stamps_format(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        data = json.loads(checkpoint.path.read_text())
        assert data["format"] == SweepCheckpoint.FORMAT == 2

    def test_format1_journal_reads_with_empty_tables(self, tmp_path):
        # Format 1 predates the ``format`` key and both live-state
        # tables: old journals written before the coordinator existed
        # must keep resuming.
        (tmp_path / SweepCheckpoint.FILENAME).write_text(
            json.dumps(
                {
                    "fingerprint": "f1",
                    "shard_count": 3,
                    "completed": {"1": {"file": "s1.csv", "pairs": 4}},
                }
            )
        )
        journal = SweepCheckpoint.read_journal(tmp_path)
        assert journal["format"] == 1
        assert journal["leases"] == {} and journal["retries"] == {}
        checkpoint = SweepCheckpoint.open(tmp_path)
        assert checkpoint.completed == {1: {"file": "s1.csv", "pairs": 4}}
        assert checkpoint.leases == {} and checkpoint.retries == {}

    def test_newer_format_rejected(self, tmp_path):
        (tmp_path / SweepCheckpoint.FILENAME).write_text(
            json.dumps(
                {
                    "format": SweepCheckpoint.FORMAT + 1,
                    "fingerprint": "f1",
                    "shard_count": 3,
                    "completed": {},
                }
            )
        )
        with pytest.raises(SweepStateError) as excinfo:
            SweepCheckpoint.read_journal(tmp_path)
        assert "newer" in str(excinfo.value)

    def test_lease_round_trips_through_journal(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        lease = checkpoint.acquire_lease(1, "worker-0", ttl=60.0)
        assert lease["expires_at"] > lease["acquired_at"]
        reopened = SweepCheckpoint.open(tmp_path)
        assert reopened.leases[1]["worker"] == "worker-0"
        checkpoint.release_lease(1)
        assert SweepCheckpoint.open(tmp_path).leases == {}

    def test_release_bumps_durable_retry_and_steal_counters(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        checkpoint.acquire_lease(2, "worker-0", ttl=60.0)
        checkpoint.release_lease(2, retried=True, stolen=True)
        checkpoint.acquire_lease(2, "worker-1", ttl=60.0)
        checkpoint.release_lease(2, retried=True)
        assert checkpoint.retry_counts(2) == (2, 1)
        assert checkpoint.retry_counts(0) == (0, 0)
        # Counters are durable: a fresh reader sees the same story.
        assert SweepCheckpoint.open(tmp_path).retry_counts(2) == (2, 1)

    def test_reclaim_drops_only_expired_leases(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        checkpoint.acquire_lease(0, "dead", ttl=-1.0)  # already lapsed
        checkpoint.acquire_lease(1, "alive", ttl=600.0)
        assert checkpoint.reclaim_expired_leases() == [0]
        assert set(checkpoint.leases) == {1}
        assert SweepCheckpoint.open(tmp_path).leases.keys() == {1}

    def test_resume_drops_expired_keeps_live_leases(self, tmp_path):
        first = self._checkpoint(tmp_path)
        first.begin()
        first.acquire_lease(0, "dead", ttl=-1.0)
        first.acquire_lease(1, "alive", ttl=600.0)
        resumed = self._checkpoint(tmp_path)
        resumed.begin(resume=True)
        assert set(resumed.leases) == {1}
        assert resumed.leases[1]["worker"] == "alive"

    def test_successful_write_preserves_previous_journal(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        before = checkpoint.path.read_bytes()
        checkpoint.mark_complete(0, "s0.csv", 2)
        assert checkpoint.backup_path.read_bytes() == before

    def test_corrupt_main_recovers_from_backup(self, tmp_path, capsys):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.begin()
        checkpoint.mark_complete(0, "s0.csv", 2)
        checkpoint.mark_complete(1, "s1.csv", 3)
        # Tear the main journal: recovery loses at most the last entry.
        checkpoint.path.write_text(
            checkpoint.path.read_text()[:40], encoding="utf-8"
        )
        journal = SweepCheckpoint.read_journal(tmp_path)
        assert "recovered" in capsys.readouterr().err
        assert set(journal["completed"]) == {"0"}
        resumed = self._checkpoint(tmp_path)
        assert resumed.begin(resume=True) == {0: "s0.csv"}
        assert resumed.missing_shards() == [1, 2]

    def test_both_copies_corrupt_raises_cleanly(self, tmp_path):
        (tmp_path / SweepCheckpoint.FILENAME).write_text("{torn")
        (tmp_path / SweepCheckpoint.BACKUP_FILENAME).write_text("{also torn")
        with pytest.raises(SweepStateError) as excinfo:
            SweepCheckpoint.read_journal(tmp_path)
        assert SweepCheckpoint.BACKUP_FILENAME in str(excinfo.value)
