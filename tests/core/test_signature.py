"""Per-model structural signatures and the vectorized prescreen.

Byte-identity of the prescreened sweep lives in the conformance
matrix (the eighth path); this file pins the signature layer itself —
vector layout, congruence semantics, the option gates, the survivor
algebra, and the store-assisted build path.
"""

import numpy as np
import pytest

from repro import ComposeOptions, ModelBuilder
from repro.core.artifact_store import ArtifactStore
from repro.core.match_all import match_all
from repro.core.options import SEMANTICS_NONE
from repro.core.signature import (
    COUNTS_LENGTH,
    ModelSignature,
    Prescreen,
    key_hash,
)
from repro.corpus import generate_corpus
from repro.sbml import Model


def _model(model_id="m", species=("A", "B"), value=0.5):
    builder = ModelBuilder(model_id).compartment("cell", size=1.0)
    for name in species:
        builder = builder.species(name, 1.0)
    builder = builder.parameter("k", value)
    builder = builder.mass_action(
        f"r_{model_id}", [species[0]], [species[-1]], "k"
    )
    return builder.build()


class TestModelSignature:
    def test_vector_layout(self):
        signature = ModelSignature.build(_model())
        assert signature.counts.shape == (COUNTS_LENGTH,)
        assert signature.key_hashes.dtype == np.uint64
        hashes = signature.key_hashes
        assert np.array_equal(hashes, np.sort(hashes))
        assert len(np.unique(hashes)) == len(hashes)
        # Fingerprint and primary vectors are aligned with key_hashes.
        assert signature.key_fingerprints.shape == hashes.shape
        assert signature.key_primary.shape == hashes.shape
        assert signature.component_count > 0
        assert signature.self_clean

    def test_copy_shares_signature_content(self):
        model = _model()
        first = ModelSignature.build(model)
        second = ModelSignature.build(model.copy())
        assert np.array_equal(first.key_hashes, second.key_hashes)
        assert np.array_equal(
            first.key_fingerprints, second.key_fingerprints
        )
        assert np.array_equal(first.counts, second.counts)

    def test_matches_is_an_options_gate(self):
        signature = ModelSignature.build(_model(), ComposeOptions())
        assert signature.matches(ComposeOptions())
        assert not signature.matches(
            ComposeOptions(semantics=SEMANTICS_NONE)
        )

    def test_self_congruence_is_never_blocked(self):
        signature = ModelSignature.build(_model())
        shared, blocked, united = signature.congruence(signature)
        assert shared == len(signature.key_hashes)
        assert not blocked
        # Every component unites exactly once with its own twin.
        assert united == signature.component_count

    def test_shared_twins_unite_disjoint_rest_adds(self):
        left = ModelSignature.build(_model("a", species=("A", "B")))
        right = ModelSignature.build(_model("b", species=("X", "Y")))
        shared, blocked, united = left.congruence(right)
        # "cell" and "k" are identical twins; everything else is
        # disjoint — the canonical prunable pair.
        assert shared > 0
        assert not blocked
        assert united == 2

    def test_conflicting_value_blocks(self):
        left = ModelSignature.build(_model("a", species=("A", "B")))
        right = ModelSignature.build(
            _model("b", species=("X", "Y"), value=0.9)
        )
        shared, blocked, united = left.congruence(right)
        # Same parameter id "k", different value: the full matcher
        # would report a conflict, so congruence must block.
        assert shared > 0
        assert blocked

    def test_value_twins_are_congruent(self):
        left = ModelSignature.build(_model("a"))
        right = ModelSignature.build(_model("a"))
        shared, blocked, united = left.congruence(right)
        assert not blocked and united == left.component_count
        different = ModelSignature.build(_model("a", value=0.7))
        _, blocked, _ = left.congruence(different)
        assert blocked  # same parameter id, different value

    def test_empty_model_signature(self):
        signature = ModelSignature.build(Model(id="empty"))
        assert signature.component_count == 0
        assert len(signature.key_hashes) == 0

    def test_bucket_hashes_disjoint_from_key_hashes(self):
        signature = ModelSignature.build(_model())
        buckets = signature.bucket_hashes()
        assert len(buckets) > 0
        assert not np.intersect1d(buckets, signature.key_hashes).size

    def test_key_hash_is_tag_scoped(self):
        assert key_hash("ids", "A") != key_hash("species", "A")
        assert key_hash("ids", "A") == key_hash("ids", "A")


class TestPrescreen:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(count=8, seed=7)

    def test_matrix_shapes_and_diagonal(self, corpus):
        screen = Prescreen.build(corpus)
        n = len(corpus)
        assert len(screen) == n
        assert screen.pair_scores.shape == (n, n)
        for i, signature in enumerate(screen.signatures):
            assert screen.pair_scores[i, i] == len(signature.key_hashes)
        assert np.array_equal(screen.pair_scores, screen.pair_scores.T)

    def test_survivor_algebra(self, corpus):
        screen = Prescreen.build(corpus)
        survivors = screen.survivors()
        # A blocked pair always survives; an empty side never does.
        assert not survivors[np.array(screen.component_counts) == 0].any()
        blocked_nonempty = (
            screen.pair_blocked
            & (screen.component_counts[:, None] != 0)
            & (screen.component_counts[None, :] != 0)
        )
        assert (survivors | ~blocked_nonempty).all()
        rate = screen.prune_rate()
        assert 0.0 <= rate <= 1.0
        # The motivating case: BioModels-like corpora share the "cell"
        # compartment everywhere, yet congruence still prunes.
        assert rate > 0.0

    def test_synthesized_counts_match_full_matcher(self, corpus):
        screen = Prescreen.build(corpus)
        full = {(o.i, o.j): o for o in match_all(corpus).outcomes}
        checked = 0
        for (i, j), outcome in full.items():
            if not screen.should_prune(i, j):
                continue
            checked += 1
            assert screen.synthesized_counts(i, j) == (
                outcome.united,
                outcome.added,
                outcome.renamed,
                outcome.conflicts,
            )
        assert checked > 0

    def test_empty_pair_short_circuits(self):
        screen = Prescreen.build([_model(), Model(id="empty")])
        assert screen.should_prune(0, 1)
        assert screen.should_prune(1, 0)
        assert screen.synthesized_counts(0, 1) == (0, 0, 0, 0)

    def test_none_semantics_blocks_every_overlap(self, corpus):
        options = ComposeOptions(semantics=SEMANTICS_NONE)
        screen = Prescreen.build(corpus, options)
        # Twins rename instead of uniting under "none": no synthesized
        # union may ever be claimed, and any overlap must survive.
        assert not screen.pair_united.any()
        overlap = screen.pair_scores > 0
        np.fill_diagonal(overlap, False)
        assert (screen.pair_blocked | ~overlap).all()

    def test_options_mismatch_rejected(self, corpus):
        signatures = [ModelSignature.build(model) for model in corpus]
        with pytest.raises(ValueError):
            Prescreen(signatures, ComposeOptions(semantics=SEMANTICS_NONE))

    def test_store_assisted_build_reuses_signatures(self, corpus, tmp_path):
        store = ArtifactStore(tmp_path)
        plain = Prescreen.build(corpus)
        for model in corpus:
            store.get_or_compute(model)
        stored = Prescreen.build(corpus, store=store)
        # Rehydrated signatures come from the store's format-4 entries
        # and must carry the exact same vectors.
        for mine, theirs in zip(plain.signatures, stored.signatures):
            assert np.array_equal(mine.key_hashes, theirs.key_hashes)
            assert np.array_equal(
                mine.key_fingerprints, theirs.key_fingerprints
            )
        assert np.array_equal(plain.survivors(), stored.survivors())

    def test_query_tables_agree_with_pair_matrices(self, corpus):
        screen = Prescreen.build(corpus)
        for i, signature in enumerate(screen.signatures):
            scores, blocked, united = screen.query_tables(signature)
            assert np.array_equal(scores, screen.pair_scores[i])
            assert np.array_equal(blocked, screen.pair_blocked[i])
            # pair_united is only defined where the pair is not
            # blocked (congruence short-circuits to 0 on a block; the
            # matrix path accumulates the tables independently).
            valid = ~blocked
            assert np.array_equal(
                united[valid], screen.pair_united[i][valid]
            )
            assert np.array_equal(
                screen.query_survivors(signature), screen.survivors()[i]
            )

    def test_query_rejects_mismatched_signature(self, corpus):
        screen = Prescreen.build(corpus)
        foreign = ModelSignature.build(
            _model(), ComposeOptions(semantics=SEMANTICS_NONE)
        )
        with pytest.raises(ValueError):
            screen.query_tables(foreign)
