"""Crash-recovery: a killed sharded sweep resumes where it stopped.

The kill is simulated by injecting an exception into the checkpoint
journal mid-sweep — after some shards have durably committed, while a
later shard is committing.  ``--resume`` must skip exactly the
journaled shards, recompute the rest, and the merged output must be
byte-identical to a never-interrupted run.
"""

import pytest

from repro import write_sbml_file
from repro.cli import main
from repro.core.match_all import read_outcomes_csv
from repro.core.shards import SweepCheckpoint
from repro.corpus.curated import (
    drug_inhibition,
    glycolysis_lower,
    glycolysis_upper,
    mapk_cascade,
)

SHARDS = 3


@pytest.fixture
def model_files(tmp_path):
    models = [
        glycolysis_upper(),
        glycolysis_lower(),
        mapk_cascade(),
        drug_inhibition(),
    ]
    paths = []
    for index, model in enumerate(models):
        path = tmp_path / f"m{index}.xml"
        write_sbml_file(model, path)
        paths.append(str(path))
    return paths


def _kill_during_commit(monkeypatch, fail_on_shard):
    """Make ``mark_complete`` raise for one shard id — the process
    "dies" after that shard's result file hit disk but before the
    journal recorded it, the worst-ordered crash point."""
    original = SweepCheckpoint.mark_complete

    def dying_mark_complete(self, shard_id, result_file, pair_count):
        if shard_id == fail_on_shard:
            raise KeyboardInterrupt(f"killed during shard {shard_id} commit")
        return original(self, shard_id, result_file, pair_count)

    monkeypatch.setattr(SweepCheckpoint, "mark_complete", dying_mark_complete)


def _run_killed_sweep(model_files, out_dir, monkeypatch):
    with monkeypatch.context() as patch:
        _kill_during_commit(patch, fail_on_shard=1)
        with pytest.raises(KeyboardInterrupt):
            main(
                ["sweep", *model_files, "--shards", str(SHARDS),
                 "--out-dir", str(out_dir)]
            )


def test_resume_skips_completed_and_matches_uninterrupted(
    model_files, tmp_path, monkeypatch, capsys
):
    out_dir = tmp_path / "sweep"

    # First attempt dies while committing shard 1: shard 0 is
    # journaled, shard 1's CSV exists but is not journaled.
    _run_killed_sweep(model_files, out_dir, monkeypatch)
    capsys.readouterr()

    journal = SweepCheckpoint.read_journal(out_dir)
    assert sorted(int(k) for k in journal["completed"]) == [0]
    assert (out_dir / "shard-0001-of-0003.csv").is_file()  # torn commit

    # Resume: shard 0 must be skipped, shards 1 and 2 recomputed.
    recomputed = []
    from repro.core.match_all import match_all_sharded as original_sharded

    def tracking_sharded(*args, **kwargs):
        recomputed.append(kwargs["shard_id"])
        return original_sharded(*args, **kwargs)

    with monkeypatch.context() as patch:
        patch.setattr("repro.cli.match_all_sharded", tracking_sharded)
        code = main(
            ["sweep", *model_files, "--shards", str(SHARDS),
             "--out-dir", str(out_dir), "--resume"]
        )
    assert code == 0
    assert recomputed == [1, 2]
    err = capsys.readouterr().err
    assert "shard 0/3: already complete, skipping" in err
    assert SweepCheckpoint.read_journal(out_dir)["completed"].keys() == {
        "0", "1", "2"
    }

    # Merge the resumed sweep and diff against a never-interrupted
    # sharded run AND the unsharded deterministic sweep: byte-identical.
    merged = tmp_path / "merged.csv"
    assert main(["sweep-merge", "--out-dir", str(out_dir),
                 "-o", str(merged)]) == 0

    clean_dir = tmp_path / "clean"
    assert main(["sweep", *model_files, "--shards", str(SHARDS),
                 "--out-dir", str(clean_dir)]) == 0
    clean_merged = tmp_path / "clean_merged.csv"
    assert main(["sweep-merge", "--out-dir", str(clean_dir),
                 "-o", str(clean_merged)]) == 0

    unsharded = tmp_path / "unsharded.csv"
    assert main(["sweep", *model_files, "--deterministic",
                 "-o", str(unsharded)]) == 0

    merged_bytes = merged.read_bytes()
    assert merged_bytes == clean_merged.read_bytes()
    assert merged_bytes == unsharded.read_bytes()


def test_resume_recomputes_unjournaled_shard_file_identically(
    model_files, tmp_path, monkeypatch
):
    """A shard file that hit disk without its journal entry (the torn
    commit) is recomputed deterministically — same run-invariant rows."""
    out_dir = tmp_path / "sweep"
    _run_killed_sweep(model_files, out_dir, monkeypatch)
    torn = out_dir / "shard-0001-of-0003.csv"
    torn_keys = [o.key() for o in read_outcomes_csv(torn)]

    assert main(["sweep", *model_files, "--shards", str(SHARDS),
                 "--out-dir", str(out_dir), "--resume"]) == 0
    assert [o.key() for o in read_outcomes_csv(torn)] == torn_keys


def test_shard_by_shard_runs_accumulate_without_resume(
    model_files, tmp_path
):
    """The one-shard-per-machine workflow: each `--shard-id I` run
    joins the journaled sweep instead of resetting it, so K separate
    invocations without --resume add up to a mergeable sweep."""
    out_dir = tmp_path / "sweep"
    for shard_id in range(SHARDS):
        assert main(["sweep", *model_files, "--shards", str(SHARDS),
                     "--shard-id", str(shard_id),
                     "--out-dir", str(out_dir)]) == 0
    journal = SweepCheckpoint.read_journal(out_dir)
    assert sorted(int(k) for k in journal["completed"]) == list(range(SHARDS))

    merged = tmp_path / "merged.csv"
    assert main(["sweep-merge", "--out-dir", str(out_dir),
                 "-o", str(merged)]) == 0
    unsharded = tmp_path / "unsharded.csv"
    assert main(["sweep", *model_files, "--deterministic",
                 "-o", str(unsharded)]) == 0
    assert merged.read_bytes() == unsharded.read_bytes()


def test_sharded_sweep_honours_output_flag(model_files, tmp_path):
    """`sweep --shards K --out-dir D -o merged.csv` writes the merged
    table once every shard is complete — the -o flag is not dropped on
    the sharded path."""
    out_dir = tmp_path / "sweep"
    merged = tmp_path / "merged.csv"
    assert main(["sweep", *model_files, "--shards", "2",
                 "--out-dir", str(out_dir), "--deterministic",
                 "-o", str(merged)]) == 0
    unsharded = tmp_path / "unsharded.csv"
    assert main(["sweep", *model_files, "--deterministic",
                 "-o", str(unsharded)]) == 0
    assert merged.read_bytes() == unsharded.read_bytes()


def test_incomplete_sharded_sweep_defers_output(
    model_files, tmp_path, capsys
):
    out_dir = tmp_path / "sweep"
    merged = tmp_path / "merged.csv"
    assert main(["sweep", *model_files, "--shards", "3", "--shard-id", "0",
                 "--out-dir", str(out_dir), "-o", str(merged)]) == 0
    assert not merged.exists()
    assert "not written" in capsys.readouterr().err


def test_resume_refuses_different_corpus(model_files, tmp_path):
    out_dir = tmp_path / "sweep"
    assert main(["sweep", *model_files, "--shards", "2",
                 "--out-dir", str(out_dir)]) == 0
    # Drop one model: different corpus fingerprint -> exit 2, not a
    # silently mixed sweep.
    code = main(["sweep", *model_files[:-1], "--shards", "2",
                 "--out-dir", str(out_dir), "--resume"])
    assert code == 2


def test_sweep_merge_reports_missing_shards(model_files, tmp_path):
    out_dir = tmp_path / "sweep"
    assert main(["sweep", *model_files, "--shards", "3", "--shard-id", "0",
                 "--out-dir", str(out_dir)]) == 0
    code = main(["sweep-merge", "--out-dir", str(out_dir)])
    assert code == 2


# ---------------------------------------------------------------------------
# Chaos-driven robustness (journal format 2, supervision, quarantine)
# ---------------------------------------------------------------------------


def _chaos_spec_file(out_dir, faults):
    """Write a chaos spec JSON the CLI's --chaos flag can arm."""
    from repro.core import chaos

    out_dir.mkdir(parents=True, exist_ok=True)
    spec = chaos.ChaosSpec(out_dir, faults=faults)
    return str(spec.save(out_dir / "faults.json"))


def test_torn_checkpoint_write_recovers_on_resume(
    model_files, tmp_path, capsys
):
    """Simulated power loss mid-journal-write: half the new journal
    lands over the old one, the process dies.  --resume must recover
    from checkpoint.json.bak, losing at most the torn entry, and the
    finished sweep must still merge byte-identically."""
    from repro.core import chaos

    out_dir = tmp_path / "sweep"
    spec_file = _chaos_spec_file(
        out_dir,
        [
            # Skip the 'begin' write; tear the first completion commit.
            chaos.Fault(
                site="checkpoint-write",
                action="torn-write",
                match={"reason": "complete"},
                times=1,
                key="tear-commit",
            )
        ],
    )
    with pytest.raises(chaos.ChaosKill):
        main(["sweep", *model_files, "--shards", str(SHARDS),
              "--out-dir", str(out_dir), "--chaos", spec_file])
    capsys.readouterr()

    # The main journal is torn JSON; the backup is the last good write.
    raw = (out_dir / SweepCheckpoint.FILENAME).read_text()
    with pytest.raises(ValueError):
        import json

        json.loads(raw)
    assert (out_dir / SweepCheckpoint.BACKUP_FILENAME).is_file()

    # Resume recovers (with a warning) and completes the sweep.
    assert main(["sweep", *model_files, "--shards", str(SHARDS),
                 "--out-dir", str(out_dir), "--resume"]) == 0
    err = capsys.readouterr().err
    assert "recovered" in err

    merged = tmp_path / "merged.csv"
    assert main(["sweep-merge", "--out-dir", str(out_dir),
                 "-o", str(merged)]) == 0
    unsharded = tmp_path / "unsharded.csv"
    assert main(["sweep", *model_files, "--deterministic",
                 "-o", str(unsharded)]) == 0
    assert merged.read_bytes() == unsharded.read_bytes()


def test_supervised_sweep_survives_kill_and_poison(
    model_files, tmp_path, capsys
):
    """The acceptance scenario: a supervised 4-worker sweep with one
    worker SIGKILLed mid-shard and one poison pair completes without
    intervention; the merged CSV is byte-identical to the unsharded
    sweep minus the quarantined pair; sweep-status reports the steal,
    the retries and the quarantine and exits 3."""
    from repro.core import chaos

    out_dir = tmp_path / "sweep"
    spec_file = _chaos_spec_file(
        out_dir,
        [
            chaos.Fault(
                site="pair-start",
                action="kill",
                match={"i": 0, "j": 1},
                times=1,
                key="kill-once",
            ),
            chaos.Fault(
                site="pair-start",
                action="raise",
                match={"i": 1, "j": 3},
                times=None,
                key="poison",
            ),
        ],
    )
    merged = tmp_path / "merged.csv"
    code = main(
        ["sweep", *model_files, "--shards", str(SHARDS),
         "--out-dir", str(out_dir), "--supervise", "--workers", "4",
         "--worker-timeout", "20", "--chaos", spec_file,
         "--deterministic", "-o", str(merged)]
    )
    assert code == 3  # complete, but degraded by quarantine
    err = capsys.readouterr().err
    assert "QUARANTINED" in err

    # Merged CSV == unsharded sweep minus exactly the poison pair.
    unsharded = tmp_path / "unsharded.csv"
    assert main(["sweep", *model_files, "--deterministic",
                 "-o", str(unsharded)]) == 0
    capsys.readouterr()
    expected = [
        line
        for line in unsharded.read_text().splitlines(keepends=True)
        if not line.startswith("1,3,")
    ]
    assert merged.read_text().splitlines(keepends=True) == expected

    # sweep-status tells the whole story and exits 3.
    assert main(["sweep-status", "--out-dir", str(out_dir)]) == 3
    status = capsys.readouterr().out
    assert "quarantined: pair (1, 3)" in status
    assert "stolen" in status
    assert "retr" in status


def test_supervised_resume_completes_partial_sweep(model_files, tmp_path):
    """--supervise --resume over a partially complete unsupervised
    sweep finishes only the missing shards (formats interoperate)."""
    out_dir = tmp_path / "sweep"
    assert main(["sweep", *model_files, "--shards", str(SHARDS),
                 "--shard-id", "0", "--out-dir", str(out_dir)]) == 0
    assert main(
        ["sweep", *model_files, "--shards", str(SHARDS),
         "--out-dir", str(out_dir), "--supervise", "--resume",
         "--workers", "2"]
    ) == 0
    journal = SweepCheckpoint.read_journal(out_dir)
    assert sorted(int(k) for k in journal["completed"]) == list(range(SHARDS))

    merged = tmp_path / "merged.csv"
    assert main(["sweep-merge", "--out-dir", str(out_dir),
                 "-o", str(merged)]) == 0
    unsharded = tmp_path / "unsharded.csv"
    assert main(["sweep", *model_files, "--deterministic",
                 "-o", str(unsharded)]) == 0
    assert merged.read_bytes() == unsharded.read_bytes()


def test_supervise_rejects_incompatible_flags(model_files, tmp_path):
    out_dir = tmp_path / "sweep"
    assert main(["sweep", *model_files, "--shards", "2",
                 "--out-dir", str(out_dir), "--supervise",
                 "--shard-id", "0"]) == 2
    assert main(["sweep", *model_files, "--shards", "2",
                 "--out-dir", str(out_dir), "--supervise",
                 "--prescreen"]) == 2
    assert main(["sweep", *model_files, "--supervise"]) == 2  # no out-dir
