"""The framed socket transport under the remote sweep boundary.

The failure envelope is the point: a socket can fail in ways a
``multiprocessing`` pipe cannot, and every one of those ways must
surface as a *distinct, catchable* error instead of a hang or a
mis-decoded frame — torn frames mid-message, half-open peers that
stall without FIN, and handshake skew (protocol version, options
fingerprint) refused before any pair is computed.
"""

import pickle
import socket
import struct
import threading
import time

import pytest

from repro.core import chaos
from repro.core.options import ComposeOptions
from repro.core.transport import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FramedConnection,
    HandshakeError,
    Listener,
    TornFrameError,
    TransportError,
    client_handshake,
    connect,
    options_fingerprint,
    parse_address,
    server_handshake,
)


@pytest.fixture()
def pair():
    """Two framed ends of one connection (AF_UNIX socketpair — the
    framing layer never looks at the address family)."""
    left_sock, right_sock = socket.socketpair()
    left = FramedConnection(left_sock)
    right = FramedConnection(right_sock)
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip_worker_tuples(self, pair):
        left, right = pair
        messages = [
            ("ready", "r1"),
            ("heartbeat", "r1"),
            ("pair-start", 0, 1, 2),
            ("pair-done", 0, {"outcome": object.__class__}, (3, 4)),
            ("shard-done", 0),
            ("stop",),
        ]
        for message in messages:
            left.send(message)
        for message in messages:
            assert right.recv() == message

    def test_large_payload_round_trips(self, pair):
        left, right = pair
        payload = ("shard", 0, [(i, i + 1) for i in range(50_000)])
        sender = threading.Thread(target=left.send, args=(payload,))
        sender.start()
        received = right.recv()
        sender.join()
        assert received == payload

    def test_poll_sees_buffered_frames_and_eof(self, pair):
        left, right = pair
        assert right.poll(0.0) is False
        left.send(("heartbeat", "r1"))
        left.send(("shard-done", 3))
        assert right.poll(1.0) is True
        assert right.recv() == ("heartbeat", "r1")
        # The second frame is already buffered: poll(0) must see it
        # without touching the socket.
        assert right.poll(0.0) is True
        assert right.recv() == ("shard-done", 3)
        left.close()
        # EOF is "readable" — recv then raises immediately, like a pipe.
        assert right.poll(1.0) is True
        with pytest.raises(EOFError):
            right.recv()

    def test_clean_close_at_frame_boundary_is_plain_eof(self, pair):
        left, right = pair
        left.send(("ready", "r1"))
        left.close()
        assert right.recv() == ("ready", "r1")
        with pytest.raises(EOFError) as excinfo:
            right.recv()
        # A clean close is NOT a torn frame — the coordinator logs the
        # two differently.
        assert not isinstance(excinfo.value, TornFrameError)

    def test_send_after_close_raises(self, pair):
        left, _ = pair
        left.close()
        with pytest.raises(TransportError):
            left.send(("heartbeat", "r1"))


class TestTornFrames:
    def _raw_pair(self):
        return socket.socketpair()

    def test_truncated_payload_is_torn_frame(self):
        left, right_sock = self._raw_pair()
        conn = FramedConnection(right_sock)
        payload = pickle.dumps(("pair-done", 0, "x" * 4096, None))
        frame = struct.pack(">I", len(payload)) + payload
        left.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(TornFrameError) as excinfo:
            conn.recv()
        assert "mid-" in str(excinfo.value)
        conn.close()

    def test_truncated_header_is_torn_frame(self):
        left, right_sock = self._raw_pair()
        conn = FramedConnection(right_sock)
        left.sendall(b"\x00\x00")  # 2 of the 4 header bytes
        left.close()
        with pytest.raises(TornFrameError):
            conn.recv()
        conn.close()

    def test_torn_frame_is_also_eof_and_oserror(self):
        # Every pipe-era peer-death handler catches (EOFError, OSError)
        # — a torn frame must land in both nets.
        assert issubclass(TornFrameError, EOFError)
        assert issubclass(TornFrameError, OSError)
        assert issubclass(TransportError, OSError)

    def test_half_open_peer_stalls_then_raises(self):
        # The peer vanished without FIN after the header: the mid-frame
        # read must give up after frame_timeout, not hang forever.
        left, right_sock = self._raw_pair()
        conn = FramedConnection(right_sock, frame_timeout=0.2)
        left.sendall(struct.pack(">I", 64))  # promises 64 bytes, sends 0
        started = time.monotonic()
        with pytest.raises(TornFrameError) as excinfo:
            conn.recv()
        assert time.monotonic() - started >= 0.15
        assert "half-open" in str(excinfo.value)
        left.close()
        conn.close()

    def test_oversized_length_prefix_is_rejected(self):
        left, right_sock = self._raw_pair()
        conn = FramedConnection(right_sock)
        left.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(TransportError) as excinfo:
            conn.recv()
        assert "corruption" in str(excinfo.value)
        left.close()
        conn.close()

    def test_undecodable_payload_is_transport_error(self):
        left, right_sock = self._raw_pair()
        conn = FramedConnection(right_sock)
        junk = b"not a pickle at all"
        left.sendall(struct.pack(">I", len(junk)) + junk)
        with pytest.raises(TransportError):
            conn.recv()
        left.close()
        conn.close()


class TestListener:
    def test_port_zero_reports_real_port(self):
        listener = Listener("127.0.0.1", 0)
        try:
            host, port = listener.address
            assert host == "127.0.0.1"
            assert port > 0
        finally:
            listener.close()

    def test_connect_accept_round_trip(self):
        listener = Listener("127.0.0.1", 0)
        try:
            client = connect(*listener.address)
            server, peer = listener.accept()
            client.send(("hello", {"pid": 42}))
            assert server.recv() == ("hello", {"pid": 42})
            server.send(("welcome", {"name": "r1"}))
            assert client.recv() == ("welcome", {"name": "r1"})
            client.close()
            server.close()
        finally:
            listener.close()

    def test_connect_refused_is_transport_error(self):
        listener = Listener("127.0.0.1", 0)
        _, port = listener.address
        listener.close()
        with pytest.raises(TransportError):
            connect("127.0.0.1", port, timeout=2.0)


class TestAddressesAndFingerprints:
    def test_parse_address(self):
        assert parse_address("box-a:9000") == ("box-a", 9000)
        assert parse_address("127.0.0.1:1") == ("127.0.0.1", 1)
        # Bare ":port" binds every interface.
        assert parse_address(":9000") == ("0.0.0.0", 9000)

    @pytest.mark.parametrize("bad", ["box-a", "box-a:", ":", "a:b", ""])
    def test_parse_address_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_fingerprint_stable_and_none_means_defaults(self):
        assert options_fingerprint(None) == options_fingerprint(
            ComposeOptions()
        )
        assert options_fingerprint(None) == options_fingerprint(None)

    def test_fingerprint_tracks_key_affecting_options(self):
        default = options_fingerprint(ComposeOptions())
        assert (
            options_fingerprint(ComposeOptions(use_math_patterns=False))
            != default
        )


def _handshake_endpoints():
    listener = Listener("127.0.0.1", 0)
    client = connect(*listener.address)
    server, _ = listener.accept()
    listener.close()
    return client, server


class TestHandshake:
    def test_accept_path_delivers_welcome(self):
        client, server = _handshake_endpoints()
        try:
            result = {}

            def serve():
                result["hello"] = server_handshake(
                    server,
                    name="r1",
                    options=None,
                    manifest={"m": 1},
                    heartbeat_interval=2.5,
                    prebuilt_indexes=True,
                )

            thread = threading.Thread(target=serve)
            thread.start()
            welcome = client_handshake(
                client, host="box-b", pid=777, has_store=False
            )
            thread.join()
            assert welcome["name"] == "r1"
            assert welcome["manifest"] == {"m": 1}
            assert welcome["heartbeat_interval"] == 2.5
            assert welcome["options_fingerprint"] == options_fingerprint(None)
            assert result["hello"]["host"] == "box-b"
            assert result["hello"]["pid"] == 777
            assert result["hello"]["has_store"] is False
        finally:
            client.close()
            server.close()

    def test_protocol_version_mismatch_rejected(self):
        client, server = _handshake_endpoints()
        try:
            client.send(
                ("hello", {"protocol": PROTOCOL_VERSION + 1, "pid": 1})
            )
            with pytest.raises(HandshakeError) as excinfo:
                server_handshake(
                    server,
                    name="r1",
                    options=None,
                    manifest=None,
                    heartbeat_interval=1.0,
                    prebuilt_indexes=True,
                )
            assert "protocol version mismatch" in str(excinfo.value)
            # The peer got an explicit reject, not a silent close.
            reply = client.recv()
            assert reply[0] == "reject"
            assert "protocol version" in reply[1]
        finally:
            client.close()
            server.close()

    def test_non_hello_first_message_rejected(self):
        client, server = _handshake_endpoints()
        try:
            client.send(("heartbeat", "rogue"))
            with pytest.raises(HandshakeError):
                server_handshake(
                    server,
                    name="r1",
                    options=None,
                    manifest=None,
                    heartbeat_interval=1.0,
                    prebuilt_indexes=True,
                )
            assert client.recv()[0] == "reject"
        finally:
            client.close()
            server.close()

    def test_missing_hello_times_out_with_reject(self):
        client, server = _handshake_endpoints()
        try:
            with pytest.raises(HandshakeError) as excinfo:
                server_handshake(
                    server,
                    name="r1",
                    options=None,
                    manifest=None,
                    heartbeat_interval=1.0,
                    prebuilt_indexes=True,
                    timeout=0.2,
                )
            assert "no hello" in str(excinfo.value)
        finally:
            client.close()
            server.close()

    def test_options_fingerprint_mismatch_rejected_cleanly(self):
        # The coordinator hashed different key-affecting options than
        # the worker decoded (version skew): the worker must refuse
        # BEFORE computing any pair, and tell the coordinator why.
        client, server = _handshake_endpoints()

        def skewed_server():
            assert server.recv()[0] == "hello"
            server.send(
                (
                    "welcome",
                    {
                        "name": "r1",
                        "options": ComposeOptions(use_math_patterns=False),
                        "options_fingerprint": options_fingerprint(None),
                        "manifest": None,
                        "heartbeat_interval": 1.0,
                        "prebuilt_indexes": True,
                    },
                )
            )

        thread = threading.Thread(target=skewed_server)
        thread.start()
        try:
            with pytest.raises(HandshakeError) as excinfo:
                client_handshake(
                    client, host="box-b", pid=1, has_store=False
                )
            thread.join()
            assert "fingerprint mismatch" in str(excinfo.value)
            # The worker sent the reject back so the coordinator's log
            # names the cause.
            reply = server.recv()
            assert reply[0] == "reject"
            assert "fingerprint" in reply[1]
        finally:
            client.close()
            server.close()

    def test_client_sees_reject_as_handshake_error(self):
        client, server = _handshake_endpoints()
        try:
            server_thread = threading.Thread(
                target=lambda: (
                    server.recv(),
                    server.send(("reject", "no manifest")),
                )
            )
            server_thread.start()
            with pytest.raises(HandshakeError) as excinfo:
                client_handshake(
                    client, host="box-b", pid=1, has_store=True
                )
            server_thread.join()
            assert "no manifest" in str(excinfo.value)
        finally:
            client.close()
            server.close()

    def test_client_handshake_on_dropped_connection(self):
        client, server = _handshake_endpoints()
        server.close()
        try:
            with pytest.raises(HandshakeError):
                client_handshake(
                    client, host="box-b", pid=1, has_store=True
                )
        finally:
            client.close()


class TestChaosSites:
    def test_net_send_torn_write_leaves_a_torn_frame(self, tmp_path, pair):
        left, right = pair
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(
                    site="net-send",
                    action="torn-write",
                    match={"kind": "pair-done"},
                    times=1,
                    key="torn",
                )
            ],
        )
        with chaos.active(spec, publish=False):
            left.send(("heartbeat", "r1"))  # kind mismatch: untouched
            with pytest.raises(chaos.ChaosKill):
                left.send(("pair-done", 0, "outcome", None))
        assert right.recv() == ("heartbeat", "r1")
        # The receiver sees exactly what a sender killed mid-sendall
        # leaves: a truncated frame.
        with pytest.raises(TornFrameError):
            right.recv()

    def test_net_stall_delays_the_send(self, tmp_path, pair):
        left, right = pair
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(
                    site="net-stall",
                    action="stall",
                    stall_seconds=0.3,
                    times=1,
                    key="stall",
                )
            ],
        )
        with chaos.active(spec, publish=False):
            started = time.monotonic()
            left.send(("heartbeat", "r1"))
            assert time.monotonic() - started >= 0.25
        assert right.recv() == ("heartbeat", "r1")
