"""Unit tests for the synthetic BioModels-like corpus."""

import pytest

from repro.corpus import (
    CORPUS_SIZE,
    MAX_EDGES,
    MAX_NODES,
    corpus_by_size,
    generate_corpus,
)
from repro.sbml import validate_model


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus()


def test_exact_count(corpus):
    assert len(corpus) == CORPUS_SIZE == 187


def test_node_range_matches_paper(corpus):
    node_counts = [model.num_nodes() for model in corpus]
    assert min(node_counts) == 0
    assert max(node_counts) == MAX_NODES == 194


def test_edge_range_matches_paper(corpus):
    edge_counts = [model.num_edges() for model in corpus]
    assert min(edge_counts) == 0
    assert max(edge_counts) <= MAX_EDGES == 313
    # The corpus must actually exercise large edge counts.
    assert max(edge_counts) > 250


def test_sizes_skewed_small(corpus):
    sizes = sorted(model.network_size() for model in corpus)
    median = sizes[len(sizes) // 2]
    assert median < sizes[-1] / 3  # long tail of large models


def test_deterministic(corpus):
    again = generate_corpus()
    for a, b in zip(corpus, again):
        assert a.id == b.id
        assert a.network_size() == b.network_size()
        assert [s.id for s in a.species] == [s.id for s in b.species]


def test_different_seed_differs():
    a = generate_corpus(count=20, seed=1)
    b = generate_corpus(count=20, seed=2)
    sizes_a = [m.network_size() for m in a]
    sizes_b = [m.network_size() for m in b]
    species_a = [tuple(s.id for s in m.species) for m in a]
    species_b = [tuple(s.id for s in m.species) for m in b]
    assert sizes_a != sizes_b or species_a != species_b


def test_all_models_valid(corpus):
    for model in corpus:
        errors = [
            issue
            for issue in validate_model(model)
            if issue.severity == "error"
        ]
        assert errors == [], f"{model.id}: {errors[:3]}"


def test_models_overlap(corpus):
    # Models must share species, otherwise composition never merges
    # anything and the Fig 8 benchmark is meaningless.
    sizable = [m for m in corpus if m.num_nodes() >= 10]
    overlaps = 0
    for first, second in zip(sizable, sizable[1:]):
        ids_a = {s.id for s in first.species}
        ids_b = {s.id for s in second.species}
        if ids_a & ids_b:
            overlaps += 1
    assert overlaps > len(sizable) / 4


def test_unique_model_ids(corpus):
    ids = [model.id for model in corpus]
    assert len(set(ids)) == len(ids)


def test_corpus_by_size_sorted(corpus):
    ordered = corpus_by_size(corpus)
    sizes = [model.network_size() for model in ordered]
    assert sizes == sorted(sizes)
    assert len(ordered) == len(corpus)


def test_kinetics_variety(corpus):
    # The generator must produce reversible reactions, modifiers and
    # multi-reactant shapes somewhere in the corpus.
    has_reversible = has_modifier = has_binding = False
    for model in corpus:
        for reaction in model.reactions:
            if reaction.reversible:
                has_reversible = True
            if reaction.modifiers:
                has_modifier = True
            if len(reaction.reactants) >= 2:
                has_binding = True
    assert has_reversible and has_modifier and has_binding


def test_some_models_have_rules_and_events(corpus):
    assert any(model.rules for model in corpus)
    assert any(model.events for model in corpus)


def test_empty_model_present(corpus):
    assert any(model.network_size() == 0 for model in corpus)
