"""Unit tests for the part library."""

import pytest

from repro import ModelBuilder
from repro.corpus.library import PartLibrary
from repro.errors import ReproError
from repro.sbml import validate_model


def atp_part():
    return (
        ModelBuilder("atp_cycle")
        .compartment("cytosol", size=1.0)
        .species("atp", 3.0, name="ATP")
        .species("adp", 0.5, name="ADP")
        .parameter("k_use", 0.4)
        .mass_action("use", ["atp"], ["adp"], "k_use")
        .build()
    )


def glucose_part():
    return (
        ModelBuilder("glucose_entry")
        .compartment("cytosol", size=1.0)
        .species("glc", 5.0, name="glucose")
        .species("g6p", 0.0, name="glucose-6-phosphate")
        .species("atp", 3.0, name="adenosine triphosphate")
        .species("adp", 0.5, name="adenosine diphosphate")
        .parameter("k_hk", 0.9)
        .reaction(
            "hk", ["glc", "atp"], ["g6p", "adp"], formula="k_hk*glc*atp"
        )
        .build()
    )


def calcium_part():
    return (
        ModelBuilder("calcium_release")
        .compartment("cytosol", size=1.0)
        .species("ca", 0.1, name="calcium")
        .species("ip3", 0.05, name="IP3")
        .parameter("k_rel", 0.7)
        .mass_action("release", ["ip3"], ["ca"], "k_rel")
        .build()
    )


@pytest.fixture
def library():
    lib = PartLibrary()
    lib.register(atp_part(), tags=["energy", "currency"])
    lib.register(glucose_part(), tags=["glycolysis", "energy"])
    lib.register(calcium_part(), tags=["signalling"])
    return lib


class TestRegistration:
    def test_register_and_len(self, library):
        assert len(library) == 3
        assert "atp_cycle" in library

    def test_duplicate_name_rejected(self, library):
        with pytest.raises(ReproError):
            library.register(atp_part())

    def test_nameless_part_rejected(self):
        lib = PartLibrary()
        from repro.sbml import Model

        with pytest.raises(ReproError):
            lib.register(Model())

    def test_get_unknown_rejected(self, library):
        with pytest.raises(ReproError):
            library.get("nothing")

    def test_provides_canonicalised(self, library):
        entry = library.get("glucose_entry")
        # "adenosine triphosphate" canonicalises to the ATP ring head.
        atp_entry = library.get("atp_cycle")
        assert set(entry.provides) & set(atp_entry.provides)


class TestSearch:
    def test_find_by_tag(self, library):
        names = [e.name for e in library.find_by_tag("energy")]
        assert names == ["atp_cycle", "glucose_entry"]

    def test_find_by_species_exact(self, library):
        names = [e.name for e in library.find_by_species("calcium")]
        assert names == ["calcium_release"]

    def test_find_by_species_synonym(self, library):
        # Ca2+ is a synonym of calcium in the built-in table.
        names = [e.name for e in library.find_by_species("Ca2+")]
        assert names == ["calcium_release"]

    def test_find_atp_across_spellings(self, library):
        names = [e.name for e in library.find_by_species("ATP")]
        assert set(names) == {"atp_cycle", "glucose_entry"}


class TestCover:
    def test_cover_single_part(self, library):
        parts = library.cover(["calcium"])
        assert [p.name for p in parts] == ["calcium_release"]

    def test_cover_multiple_parts(self, library):
        parts = library.cover(["glucose", "calcium"])
        assert {p.name for p in parts} == {
            "glucose_entry", "calcium_release",
        }

    def test_cover_prefers_fewer_parts(self, library):
        # glucose_entry alone provides glucose AND atp.
        parts = library.cover(["glucose", "ATP"])
        assert [p.name for p in parts] == ["glucose_entry"]

    def test_cover_impossible(self, library):
        with pytest.raises(ReproError):
            library.cover(["unobtainium"])


class TestAssembly:
    def test_assemble_two_parts(self, library):
        model, reports = library.assemble(["atp_cycle", "glucose_entry"])
        assert model.id == "assembled"
        # ATP/ADP united across the parts: 4 species, not 6.
        assert model.num_nodes() == 4
        assert len(reports) == 2
        assert validate_model(model) == []

    def test_assemble_empty_rejected(self, library):
        with pytest.raises(ReproError):
            library.assemble([])

    def test_assemble_for_species(self, library):
        model, _ = library.assemble_for(["glucose", "calcium"])
        names = {s.name for s in model.species}
        assert "glucose" in names
        assert "calcium" in names
        assert validate_model(model) == []

    def test_assembly_order_preserves_first_values(self, library):
        model, _ = library.assemble(["atp_cycle", "glucose_entry"])
        atp = next(s for s in model.species if (s.name or "").upper() == "ATP")
        assert atp.initial_concentration == 3.0
