"""Unit tests for the 17-model suite and the curated pathways."""

import numpy as np
import pytest

from repro import compose_all
from repro.corpus import (
    SUITE_SIZE,
    drug_inhibition,
    gene_expression,
    glycolysis_lower,
    glycolysis_upper,
    lotka_volterra,
    mapk_cascade,
    semantic_suite,
)
from repro.sbml import validate_model
from repro.sim import GillespieSimulator, simulate


class TestSemanticSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return semantic_suite()

    def test_exactly_17_models(self, suite):
        assert len(suite) == SUITE_SIZE == 17

    def test_node_counts_4_to_7(self, suite):
        for model in suite:
            assert 4 <= model.num_nodes() <= 7, model.id

    def test_edge_counts_0_to_3(self, suite):
        for model in suite:
            assert 0 <= model.num_edges() <= 3, model.id

    def test_all_annotated(self, suite):
        # The paper: "all models already annotated biologically".
        for model in suite:
            for species in model.species:
                assert species.annotations.get("is"), (
                    f"{model.id}/{species.id} lacks annotation"
                )

    def test_all_valid(self, suite):
        for model in suite:
            errors = [
                issue
                for issue in validate_model(model)
                if issue.severity == "error"
            ]
            assert errors == [], f"{model.id}: {errors[:3]}"

    def test_annotations_consistent_across_models(self, suite):
        # ATP in one model carries the same URI as ATP in another —
        # required for annotation-based identity in the baseline.
        uris = {}
        for model in suite:
            for species in model.species:
                if species.name and "ATP" == species.name:
                    uris[model.id] = species.annotations["is"][0]
        assert len(set(uris.values())) == 1

    def test_synonymous_names_share_uri(self, suite):
        by_model = {model.id: model for model in suite}
        atp_short = by_model["energy_core"].get_species("atp")
        atp_long = by_model["storage_na"].get_species("atp")
        assert atp_short.annotations["is"] == atp_long.annotations["is"]

    def test_some_models_reaction_free(self, suite):
        assert any(model.num_edges() == 0 for model in suite)

    def test_deterministic(self):
        first = semantic_suite()
        second = semantic_suite()
        for a, b in zip(first, second):
            assert a.id == b.id
            assert [s.annotations for s in a.species] == [
                s.annotations for s in b.species
            ]


class TestCuratedModels:
    @pytest.mark.parametrize(
        "factory",
        [
            glycolysis_upper,
            glycolysis_lower,
            mapk_cascade,
            drug_inhibition,
            gene_expression,
            lotka_volterra,
        ],
    )
    def test_valid(self, factory):
        model = factory()
        errors = [
            issue
            for issue in validate_model(model)
            if issue.severity == "error"
        ]
        assert errors == [], f"{model.id}: {errors[:3]}"

    def test_glycolysis_halves_share_species(self):
        upper = {s.name for s in glycolysis_upper().species}
        lower = {s.name for s in glycolysis_lower().species}
        shared = upper & lower
        assert "glyceraldehyde-3-phosphate" in shared
        assert "ATP" in shared

    def test_glycolysis_composes_into_full_pathway(self):
        merged, report = compose_all([glycolysis_upper(), glycolysis_lower()]).pair()
        # Shared: g3p, atp, adp (+ compartment).
        united_species = {
            d.first_id
            for d in report.duplicates
            if d.component_type == "species"
        }
        assert {"g3p", "atp", "adp"} <= united_species
        assert validate_model(merged) == []
        # The full pathway converts glucose into pyruvate.
        trace = simulate(merged, t_end=20.0, steps=2000)
        assert trace.final()["pyr"] > 0.1

    def test_mapk_cascade_activates(self):
        trace = simulate(mapk_cascade(), t_end=50.0, steps=2000)
        assert trace.final()["mapk_p"] > 0.2

    def test_drug_overlay_reduces_flux(self):
        # The drug-interaction scenario: composing the inhibitor
        # overlay slows glucose consumption into the pathway.
        plain = simulate(glycolysis_upper(), t_end=5.0, steps=500)
        merged = compose_all([glycolysis_upper(), drug_inhibition()]).model
        assert validate_model(merged) == []
        dosed = simulate(merged, t_end=5.0, steps=500)
        assert dosed.final()["glc"] < plain.final()["glc"]
        assert dosed.final()["drug_glc"] > 0.0

    def test_gene_expression_stochastic(self):
        traces = GillespieSimulator(gene_expression()).run_many(
            5, 20.0, seed=3
        )
        finals = [t.final()["protein"] for t in traces]
        assert np.mean(finals) > 10

    def test_lotka_volterra_oscillates(self):
        trace = GillespieSimulator(lotka_volterra()).run(
            10.0, np.random.default_rng(11)
        )
        prey = trace.column("prey")
        # Both growth and decline phases appear.
        diffs = np.diff(prey)
        assert (diffs > 0).any() and (diffs < 0).any()
