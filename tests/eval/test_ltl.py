"""Unit tests for the PLTL property language (§4.1.4)."""

import numpy as np
import pytest

from repro.errors import PropertyError
from repro.eval import check_trace, parse_property
from repro.eval.ltl import Atom, Finally, Globally, Implies, Next, Until
from repro.sim import Trace


@pytest.fixture
def decay_trace():
    times = np.linspace(0, 10, 101)
    return Trace(times, {"A": 10 * np.exp(-times), "B": 10 - 10 * np.exp(-times)})


@pytest.fixture
def step_trace():
    # A: 0 for t<5, then 1.  B: always 2.
    times = np.linspace(0, 10, 101)
    return Trace(
        times, {"A": (times >= 5).astype(float), "B": np.full(101, 2.0)}
    )


class TestParsing:
    def test_atom(self):
        formula = parse_property("A > 5")
        assert isinstance(formula, Atom)

    def test_concentration_brackets(self):
        formula = parse_property("[A] > 5")
        assert isinstance(formula, Atom)

    def test_temporal_operators(self):
        assert isinstance(parse_property("G (A > 0)"), Globally)
        assert isinstance(parse_property("F (A > 0)"), Finally)
        assert isinstance(parse_property("X (A > 0)"), Next)
        assert isinstance(parse_property("(A > 0) U (B > 0)"), Until)

    def test_time_bounds(self):
        formula = parse_property("F[0, 5] (A > 0.5)")
        assert isinstance(formula, Finally)
        assert formula.bound == (0.0, 5.0)

    def test_implication(self):
        formula = parse_property("(A > 5) -> F (B > 5)")
        assert isinstance(formula, Implies)

    def test_empty_rejected(self):
        with pytest.raises(PropertyError):
            parse_property("   ")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(PropertyError):
            parse_property("(A > 5")

    def test_bad_bound_rejected(self):
        with pytest.raises(PropertyError):
            parse_property("F[5, 1] (A > 0)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PropertyError):
            parse_property("A > 5 ) B")


class TestSemantics:
    def test_atom_at_start(self, decay_trace):
        assert check_trace("A > 5", decay_trace)
        assert not check_trace("A < 5", decay_trace)

    def test_globally(self, decay_trace):
        assert check_trace("G (A >= 0)", decay_trace)
        assert not check_trace("G (A > 5)", decay_trace)

    def test_finally(self, decay_trace):
        assert check_trace("F (B > 9)", decay_trace)
        assert not check_trace("F (A > 100)", decay_trace)

    def test_conservation_invariant(self, decay_trace):
        # A + B == 10 throughout (within float tolerance).
        assert check_trace("G (A + B > 9.99 & A + B < 10.01)", decay_trace)

    def test_until(self, step_trace):
        # B stays 2 until A becomes 1.
        assert check_trace("(B == 2) U (A == 1)", step_trace)
        assert not check_trace("(B == 3) U (A == 1)", step_trace)

    def test_until_needs_right_side(self, decay_trace):
        assert not check_trace("(A > 0) U (A > 100)", decay_trace)

    def test_next(self, step_trace):
        assert check_trace("X (time > 0)", step_trace)

    def test_next_false_at_end(self):
        single = Trace([0.0], {"A": [1.0]})
        assert not check_trace("X (A > 0)", single)

    def test_time_bounded_finally(self, step_trace):
        # A rises at t=5: not within [0,4], within [0,6].
        assert not check_trace("F[0,4] (A > 0.5)", step_trace)
        assert check_trace("F[0,6] (A > 0.5)", step_trace)

    def test_time_bounded_globally(self, step_trace):
        assert check_trace("G[6,10] (A > 0.5)", step_trace)
        assert not check_trace("G[0,10] (A > 0.5)", step_trace)

    def test_implication_semantics(self, step_trace):
        # Whenever A is high, B equals 2 (vacuous early, true late).
        assert check_trace("G ((A > 0.5) -> (B == 2))", step_trace)

    def test_negation(self, decay_trace):
        assert check_trace("!(A > 100)", decay_trace)

    def test_boolean_connectives(self, decay_trace):
        assert check_trace("(A > 5) & (B < 5)", decay_trace)
        assert check_trace("(A > 100) | (B < 5)", decay_trace)

    def test_time_identifier_available(self, decay_trace):
        assert check_trace("F (time >= 10)", decay_trace)

    def test_unknown_species_raises(self, decay_trace):
        with pytest.raises(PropertyError):
            check_trace("Z > 1", decay_trace)

    def test_empty_trace_rejected(self):
        empty = Trace([], {"A": []})
        with pytest.raises(PropertyError):
            check_trace("A > 0", empty)

    def test_true_false_atoms(self, decay_trace):
        assert check_trace("true", decay_trace)
        assert not check_trace("false", decay_trace)

    def test_nested_temporals(self, step_trace):
        # Eventually, A stays high forever.
        assert check_trace("F (G (A > 0.5))", step_trace)
        assert not check_trace("F (G (A < 0.5))", step_trace)
