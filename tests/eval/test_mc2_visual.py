"""Unit tests for the MC2-style checker (§4.1.4) and the simulation
comparison (§4.1.2)."""

import pytest

from repro import ModelBuilder, compose_all
from repro.eval import (
    MonteCarloModelChecker,
    check_deterministic,
    compare_simulations,
)


def decay_model(model_id="m", k=1.0, start=100.0):
    return (
        ModelBuilder(model_id)
        .compartment("cell", size=1.0)
        .species("A", start, amount=True)
        .parameter("k", k)
        .mass_action("r", ["A"], [], "k")
        .build()
    )


class TestMonteCarloChecker:
    @pytest.fixture(scope="class")
    def checker(self):
        return MonteCarloModelChecker(
            decay_model(), runs=40, t_end=10.0, seed=123
        )

    def test_certain_property(self, checker):
        result = checker.probability("G (A >= 0)")
        assert result.probability == 1.0

    def test_impossible_property(self, checker):
        result = checker.probability("F (A > 1000)")
        assert result.probability == 0.0

    def test_decay_reaches_low_level(self, checker):
        # After 10 time units at k=1, 100 molecules are almost surely
        # nearly gone.
        result = checker.probability("F (A < 10)")
        assert result.probability > 0.9

    def test_check_threshold(self, checker):
        assert checker.check("G (A <= 100)", threshold=0.9)
        assert not checker.check("G (A > 50)", threshold=0.5)

    def test_confidence_interval_bounds(self, checker):
        result = checker.probability("F (A < 10)")
        low, high = result.confidence_interval()
        assert 0.0 <= low <= result.probability <= high <= 1.0

    def test_result_printable(self, checker):
        text = str(checker.probability("G (A >= 0)"))
        assert "P[" in text and "CI" in text

    def test_deterministic_seeding(self):
        a = MonteCarloModelChecker(decay_model(), runs=10, t_end=5.0, seed=7)
        b = MonteCarloModelChecker(decay_model(), runs=10, t_end=5.0, seed=7)
        pa = a.probability("F (A < 50)").probability
        pb = b.probability("F (A < 50)").probability
        assert pa == pb

    def test_compare_models(self):
        checker_a = MonteCarloModelChecker(
            decay_model("a"), runs=20, t_end=5.0, seed=1
        )
        checker_b = MonteCarloModelChecker(
            decay_model("b"), runs=20, t_end=5.0, seed=1
        )
        table = checker_a.compare(checker_b, ["F (A < 50)"])
        assert table["F (A < 50)"]["this"] == table["F (A < 50)"]["other"]

    def test_composed_model_preserves_properties(self):
        # §4.1.4 workflow: composed model satisfies the same
        # properties as the expected model.
        merged = compose_all([decay_model("x"), decay_model("y")]).model
        checker_expected = MonteCarloModelChecker(
            decay_model(), runs=20, t_end=10.0, seed=5
        )
        checker_merged = MonteCarloModelChecker(
            merged, runs=20, t_end=10.0, seed=5
        )
        expected = checker_expected.probability("F (A < 10)").probability
        actual = checker_merged.probability("F (A < 10)").probability
        assert expected == actual


class TestDeterministicCheck:
    def test_ode_property(self):
        model = (
            ModelBuilder("ode")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .parameter("k", 1.0)
            .mass_action("r", ["A"], ["B"], "k")
            .build()
        )
        assert check_deterministic(model, "F (B > 9)", t_end=10.0)
        assert check_deterministic(model, "G (A + B > 9.99)", t_end=10.0)
        assert not check_deterministic(model, "G (A > 5)", t_end=10.0)


class TestCompareSimulations:
    def test_identical_models_match(self):
        model = (
            ModelBuilder("v")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .parameter("k", 0.3)
            .mass_action("r", ["A"], [], "k")
            .build()
        )
        comparison = compare_simulations(model, model.copy(), t_end=5.0)
        assert comparison.matching()
        assert comparison.species[0].max_abs_difference == 0.0

    def test_different_rate_detected(self):
        fast = (
            ModelBuilder("fast").compartment("cell", size=1.0)
            .species("A", 10.0).parameter("k", 1.0)
            .mass_action("r", ["A"], [], "k").build()
        )
        slow = (
            ModelBuilder("slow").compartment("cell", size=1.0)
            .species("A", 10.0).parameter("k", 0.1)
            .mass_action("r", ["A"], [], "k").build()
        )
        comparison = compare_simulations(fast, slow, t_end=5.0)
        assert not comparison.matching()

    def test_report_contains_sparklines(self):
        model = (
            ModelBuilder("v").compartment("cell", size=1.0)
            .species("A", 10.0).parameter("k", 0.3)
            .mass_action("r", ["A"], [], "k").build()
        )
        report = compare_simulations(model, model.copy(), 5.0).report()
        assert "expected" in report and "actual" in report
        assert "A" in report

    def test_composed_model_simulates_like_original(self):
        # §4.1.2 end-to-end: merge two overlapping models, the shared
        # part behaves like the original.
        merged = compose_all(
            [decay_model("x", k=0.5), decay_model("y", k=0.5)]
        ).model
        comparison = compare_simulations(
            decay_model("expected", k=0.5), merged, t_end=5.0
        )
        assert comparison.matching()
