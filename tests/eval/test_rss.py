"""Unit tests for residual-sum-of-squares trace comparison (§4.1.3)."""

import numpy as np
import pytest

from repro import ModelBuilder, compose_all
from repro.errors import SimulationError
from repro.eval import residual_sum_of_squares, rss_report, traces_equivalent
from repro.sim import Trace, simulate


def make_trace(offset=0.0, n=51):
    times = np.linspace(0, 5, n)
    return Trace(
        times,
        {"A": np.exp(-times) + offset, "B": times * 2.0},
    )


def test_rss_identical_is_zero():
    trace = make_trace()
    rss = residual_sum_of_squares(trace, trace)
    assert rss == {"A": 0.0, "B": 0.0}


def test_rss_detects_offset():
    rss = residual_sum_of_squares(make_trace(), make_trace(offset=0.1))
    assert rss["A"] == pytest.approx(51 * 0.1**2, rel=1e-6)
    assert rss["B"] == 0.0


def test_rss_shared_species_only():
    a = Trace([0, 1], {"A": [1, 2], "B": [3, 4]})
    b = Trace([0, 1], {"A": [1, 2], "C": [5, 6]})
    rss = residual_sum_of_squares(a, b)
    assert set(rss) == {"A"}


def test_rss_explicit_species_must_exist():
    a = Trace([0, 1], {"A": [1, 2]})
    b = Trace([0, 1], {"A": [1, 2]})
    with pytest.raises(SimulationError):
        residual_sum_of_squares(a, b, species=["Z"])


def test_rss_no_shared_species_rejected():
    a = Trace([0, 1], {"A": [1, 2]})
    b = Trace([0, 1], {"B": [1, 2]})
    with pytest.raises(SimulationError):
        residual_sum_of_squares(a, b)


def test_rss_resamples_different_grids():
    coarse = Trace(np.linspace(0, 5, 6), {"A": np.linspace(0, 5, 6)})
    fine = Trace(np.linspace(0, 5, 501), {"A": np.linspace(0, 5, 501)})
    rss = residual_sum_of_squares(coarse, fine)
    assert rss["A"] == pytest.approx(0.0, abs=1e-12)


def test_rss_disjoint_time_spans_rejected():
    a = Trace([0, 1], {"A": [1, 2]})
    b = Trace([5, 6], {"A": [1, 2]})
    with pytest.raises(SimulationError):
        residual_sum_of_squares(a, b)


def test_traces_equivalent_tolerance():
    assert traces_equivalent(make_trace(), make_trace())
    assert not traces_equivalent(make_trace(), make_trace(offset=0.5))


def test_rss_report_format():
    report = rss_report(make_trace(), make_trace(offset=0.1))
    assert "species" in report
    assert "A" in report and "B" in report


def test_composed_model_rss_near_zero():
    """The paper's end-to-end §4.1.3 check: composing two copies of a
    model must not change its dynamics."""
    def build(model_id):
        return (
            ModelBuilder(model_id)
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .parameter("k1", 0.5)
            .mass_action("r1", ["A"], ["B"], "k1")
            .build()
        )

    original = build("original")
    merged = compose_all([build("x"), build("y")]).model
    trace_original = simulate(original, 5.0, 200)
    trace_merged = simulate(merged, 5.0, 200)
    assert traces_equivalent(trace_original, trace_merged)
    rss = residual_sum_of_squares(trace_original, trace_merged)
    assert all(value < 1e-12 for value in rss.values())
