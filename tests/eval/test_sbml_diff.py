"""Unit tests for the SBML-aware diff (paper §4.1.1)."""

from repro import ModelBuilder, compose_all
from repro.eval import diff_models, models_equivalent


def simple_model(model_id="m"):
    return (
        ModelBuilder(model_id)
        .compartment("cell", size=1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .parameter("k", 0.5)
        .mass_action("r", ["A"], ["B"], "k")
        .build()
    )


def test_model_equals_itself():
    model = simple_model()
    assert models_equivalent(model, model)
    assert models_equivalent(model, model.copy())


def test_component_order_irrelevant():
    a = (
        ModelBuilder("m")
        .compartment("cell")
        .species("A", 1.0)
        .species("B", 2.0)
        .build()
    )
    b = (
        ModelBuilder("m")
        .compartment("cell")
        .species("B", 2.0)
        .species("A", 1.0)
        .build()
    )
    assert models_equivalent(a, b)


def test_reactant_order_irrelevant():
    a = (
        ModelBuilder("m").compartment("c").species("A").species("B")
        .species("C").parameter("k", 1.0)
        .mass_action("r", ["A", "B"], ["C"], "k").build()
    )
    b = (
        ModelBuilder("m").compartment("c").species("A").species("B")
        .species("C").parameter("k", 1.0)
        .mass_action("r", ["B", "A"], ["C"], "k").build()
    )
    # Note the kinetic law also reorders commutatively: k*A*B vs k*B*A.
    assert models_equivalent(a, b)


def test_commutative_math_equivalent():
    a = (
        ModelBuilder("m").compartment("c").species("A").parameter("k", 1.0)
        .reaction("r", ["A"], [], formula="k * A").build()
    )
    b = (
        ModelBuilder("m").compartment("c").species("A").parameter("k", 1.0)
        .reaction("r", ["A"], [], formula="A * k").build()
    )
    assert models_equivalent(a, b)


def test_missing_species_reported():
    a = simple_model()
    b = simple_model()
    b.species.pop()  # drop B
    entries = diff_models(a, b)
    assert any(
        e.kind == "missing" and "species[B]" in e.path for e in entries
    )


def test_extra_component_reported():
    a = simple_model()
    b = simple_model()
    b = ModelBuilder("m2").compartment("cell").species("Z", 1.0).build()
    entries = diff_models(a, b)
    kinds = {e.kind for e in entries}
    assert "missing" in kinds and "extra" in kinds


def test_changed_initial_value_reported():
    a = simple_model()
    b = simple_model()
    b.get_species("A").initial_concentration = 99.0
    entries = diff_models(a, b)
    assert any(
        e.kind == "changed" and "species[A].initial" in e.path
        for e in entries
    )


def test_changed_kinetic_law_reported():
    a = simple_model()
    b = simple_model()
    b.get_reaction("r").kinetic_law.math = None
    entries = diff_models(a, b)
    assert any("kineticLaw" in e.path for e in entries)


def test_changed_stoichiometry_reported():
    a = simple_model()
    b = simple_model()
    b.get_reaction("r").reactants[0].stoichiometry = 2.0
    entries = diff_models(a, b)
    assert any("reactants" in e.path for e in entries)


def test_unit_definitions_compared_canonically():
    a = ModelBuilder("m").unit("u", [("mole", 1, -3, 1.0)]).build()
    b = ModelBuilder("m").unit("u", [("mole", 1, 0, 1e-3)]).build()
    assert models_equivalent(a, b)


def test_rules_keyed_by_variable():
    a = (
        ModelBuilder("m").compartment("c").parameter("p", constant=False)
        .assignment_rule("p", "1 + 2").build()
    )
    b = (
        ModelBuilder("m").compartment("c").parameter("p", constant=False)
        .assignment_rule("p", "2 + 1").build()
    )
    assert models_equivalent(a, b)  # commutative math


def test_initial_assignments_compared():
    a = (
        ModelBuilder("m").compartment("c").species("A")
        .initial_assignment("A", "6").build()
    )
    b = (
        ModelBuilder("m").compartment("c").species("A")
        .initial_assignment("A", "7").build()
    )
    entries = diff_models(a, b)
    assert any("initialAssignment[A]" in e.path for e in entries)


def test_events_compared_order_insensitively():
    a = (
        ModelBuilder("m").compartment("c").species("A").species("B")
        .event("e", "time > 1", {"A": "1", "B": "2"}).build()
    )
    b = (
        ModelBuilder("m").compartment("c").species("A").species("B")
        .event("e", "time > 1", {"B": "2", "A": "1"}).build()
    )
    assert models_equivalent(a, b)


def test_composition_verified_by_diff():
    # The paper's §4.1.1 workflow: merged model vs expected model.
    a = simple_model("a")
    expected = simple_model("expected")
    merged = compose_all([a, simple_model("b")]).model
    merged.id = "expected"
    assert models_equivalent(expected, merged)


def test_diff_entries_printable():
    a = simple_model()
    b = simple_model()
    b.get_species("A").initial_concentration = 5.0
    text = "\n".join(str(e) for e in diff_models(a, b))
    assert "CHANGED" in text
