"""Unit tests for graph-level composition and model decomposition."""

import networkx as nx
import pytest

from repro import ModelBuilder, compose_all
from repro.eval import models_equivalent
from repro.graph import (
    compose_graphs,
    connected_components,
    extract_submodel,
    species_graph,
    split_by_species,
)
from repro.sbml import validate_model
from repro.synonyms import SynonymTable


def labelled_graph(edges, labels=None):
    graph = nx.MultiDiGraph()
    labels = labels or {}
    for source, target, label in edges:
        for node in (source, target):
            if node not in graph:
                graph.add_node(node, label=labels.get(node, node))
        graph.add_edge(source, target, label=label)
    return graph


class TestComposeGraphs:
    def test_identical_graphs_idempotent(self):
        # Paper Figure 1 at the graph level.
        g = labelled_graph(
            [("A", "B", "k1"), ("B", "C", "k2"), ("C", "B", "k3")]
        )
        result, mapping = compose_graphs(g, g.copy())
        assert set(result.nodes) == {"A", "B", "C"}
        assert result.number_of_edges() == 3
        assert mapping == {"A": "A", "B": "B", "C": "C"}

    def test_disjoint_graphs_union(self):
        # Paper Figure 2.
        g1 = labelled_graph([("A", "B", "k1"), ("B", "C", "k2")])
        g2 = labelled_graph([("D", "E", "k3")])
        result, _ = compose_graphs(g1, g2)
        assert set(result.nodes) == {"A", "B", "C", "D", "E"}
        assert result.number_of_edges() == 3

    def test_shared_subnetwork(self):
        # Paper Figure 3.
        g1 = labelled_graph(
            [
                ("A", "B", "k1"),
                ("B", "C", "k2"),
                ("C", "B", "k3"),
                ("C", "D", "k4"),
            ]
        )
        g2 = labelled_graph([("A", "B", "k1"), ("B", "C", "k2")])
        result, _ = compose_graphs(g1, g2)
        assert set(result.nodes) == {"A", "B", "C", "D"}
        assert result.number_of_edges() == 4

    def test_synonymous_labels_united(self):
        g1 = labelled_graph([], labels={})
        g1.add_node("atp", label="ATP")
        g2 = nx.MultiDiGraph()
        g2.add_node("x", label="adenosine triphosphate")
        table = SynonymTable([["ATP", "adenosine triphosphate"]])
        result, mapping = compose_graphs(g1, g2, table)
        assert result.number_of_nodes() == 1
        assert mapping["x"] == "atp"

    def test_distinct_edge_labels_kept(self):
        g1 = labelled_graph([("A", "B", "k1")])
        g2 = labelled_graph([("A", "B", "k9")])
        result, _ = compose_graphs(g1, g2)
        assert result.number_of_edges() == 2

    def test_id_collision_with_different_label_renamed(self):
        g1 = nx.MultiDiGraph()
        g1.add_node("n1", label="glucose")
        g2 = nx.MultiDiGraph()
        g2.add_node("n1", label="pyruvate")
        result, mapping = compose_graphs(g1, g2)
        assert result.number_of_nodes() == 2
        assert mapping["n1"] != "n1"


def two_part_model():
    """A model with two independent sub-networks."""
    return (
        ModelBuilder("two_parts")
        .compartment("cell", size=1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .species("X", 2.0)
        .species("Y", 0.0)
        .parameter("k1", 0.5)
        .parameter("k2", 0.25)
        .mass_action("ab", ["A"], ["B"], "k1")
        .mass_action("xy", ["X"], ["Y"], "k2")
        .build()
    )


class TestConnectedComponents:
    def test_two_components_found(self):
        parts = connected_components(two_part_model())
        assert len(parts) == 2

    def test_components_partition_species(self):
        parts = connected_components(two_part_model())
        all_species = sorted(
            s.id for part in parts for s in part.species
        )
        assert all_species == ["A", "B", "X", "Y"]

    def test_components_are_valid(self):
        for part in connected_components(two_part_model()):
            errors = [
                issue
                for issue in validate_model(part)
                if issue.severity == "error"
            ]
            assert errors == []

    def test_connected_model_single_component(self):
        model = (
            ModelBuilder("conn").compartment("c")
            .species("A").species("B").parameter("k", 1.0)
            .mass_action("r", ["A"], ["B"], "k")
            .build()
        )
        assert len(connected_components(model)) == 1


class TestExtractSubmodel:
    def test_keeps_internal_reactions_only(self):
        model = two_part_model()
        sub = extract_submodel(model, {"A", "B"}, "sub")
        assert sorted(s.id for s in sub.species) == ["A", "B"]
        assert [r.id for r in sub.reactions] == ["ab"]

    def test_supporting_parameters_travel(self):
        sub = extract_submodel(two_part_model(), {"A", "B"}, "sub")
        assert sub.get_parameter("k1") is not None
        assert sub.get_parameter("k2") is None

    def test_compartment_kept(self):
        sub = extract_submodel(two_part_model(), {"A"}, "sub")
        assert sub.get_compartment("cell") is not None

    def test_cross_boundary_reaction_dropped(self):
        model = (
            ModelBuilder("m").compartment("c")
            .species("A").species("B").parameter("k", 1.0)
            .mass_action("r", ["A"], ["B"], "k")
            .build()
        )
        sub = extract_submodel(model, {"A"}, "sub")
        assert sub.reactions == []

    def test_extract_is_valid(self):
        sub = extract_submodel(two_part_model(), {"A", "B"}, "sub")
        assert validate_model(sub) == []


class TestSplitComposeRoundTrip:
    def test_split_then_compose_recovers_network(self):
        model = two_part_model()
        parts = split_by_species(model, [{"A", "B"}, {"X", "Y"}])
        assert len(parts) == 2
        recombined = compose_all([parts[0], parts[1]]).model
        recombined.id = model.id
        assert models_equivalent(model, recombined)

    def test_split_shares_boundary_species(self):
        # A chain split in the middle duplicates the boundary species.
        model = (
            ModelBuilder("chain").compartment("c")
            .species("A", 1.0).species("B", 0.0).species("C", 0.0)
            .parameter("k1", 1.0).parameter("k2", 1.0)
            .mass_action("r1", ["A"], ["B"], "k1")
            .mass_action("r2", ["B"], ["C"], "k2")
            .build()
        )
        parts = split_by_species(model, [{"A"}, {"B", "C"}])
        first_species = {s.id for s in parts[0].species}
        second_species = {s.id for s in parts[1].species}
        # r1 (A->B) lands in the first part, dragging B along: B is
        # the shared boundary that composition later re-unites.
        assert "B" in first_species and "B" in second_species

    def test_chain_round_trip(self):
        model = (
            ModelBuilder("chain").compartment("c")
            .species("A", 1.0).species("B", 0.0).species("C", 0.0)
            .parameter("k1", 1.0).parameter("k2", 1.0)
            .mass_action("r1", ["A"], ["B"], "k1")
            .mass_action("r2", ["B"], ["C"], "k2")
            .build()
        )
        parts = split_by_species(model, [{"A", "B"}, {"C"}])
        recombined = compose_all([parts[0], parts[1]]).model
        recombined.id = model.id
        assert models_equivalent(model, recombined)

    def test_unlisted_species_form_extra_part(self):
        model = two_part_model()
        parts = split_by_species(model, [{"A", "B"}])
        species_sets = [
            {s.id for s in part.species} for part in parts
        ]
        assert any({"X", "Y"} <= group for group in species_sets)
