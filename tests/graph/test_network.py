"""Unit tests for the graph view of models."""

import networkx as nx
import pytest

from repro import ModelBuilder
from repro.graph import (
    bipartite_graph,
    graph_size,
    isomorphic_networks,
    species_graph,
)


def figure1_model(model_id="fig1"):
    """The paper's Figure 1 network: A -> B <-> C."""
    return (
        ModelBuilder(model_id)
        .compartment("cell", size=1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.5)
        .parameter("k2", 0.3)
        .parameter("k3", 0.1)
        .mass_action("r1", ["A"], ["B"], "k1")
        .mass_action("r2", ["B"], ["C"], "k2")
        .mass_action("r3", ["C"], ["B"], "k3")
        .build()
    )


class TestSpeciesGraph:
    def test_nodes_are_species(self):
        graph = species_graph(figure1_model())
        assert set(graph.nodes) == {"A", "B", "C"}

    def test_edges_follow_reactions(self):
        graph = species_graph(figure1_model())
        assert graph.has_edge("A", "B")
        assert graph.has_edge("B", "C")
        assert graph.has_edge("C", "B")
        assert graph.number_of_edges() == 3

    def test_edge_labels_carry_kinetics(self):
        graph = species_graph(figure1_model())
        labels = {
            data["label"] for _, _, data in graph.edges(data=True)
        }
        assert "k1 * A" in labels

    def test_node_labels_phi(self):
        model = (
            ModelBuilder("m").compartment("c")
            .species("glc", 1.0, name="glucose").build()
        )
        graph = species_graph(model)
        assert graph.nodes["glc"]["label"] == "glucose"

    def test_binding_reaction_fans_out(self):
        model = (
            ModelBuilder("m").compartment("c")
            .species("A").species("B").species("C")
            .parameter("k", 1.0)
            .mass_action("r", ["A", "B"], ["C"], "k")
            .build()
        )
        graph = species_graph(model)
        assert graph.has_edge("A", "C")
        assert graph.has_edge("B", "C")

    def test_synthesis_degradation_use_sink_nodes(self):
        model = (
            ModelBuilder("m").compartment("c").species("X")
            .parameter("k", 1.0)
            .reaction("make", [], ["X"], formula="k")
            .reaction("lose", ["X"], [], formula="k*X")
            .build()
        )
        graph = species_graph(model)
        assert graph.number_of_edges() == 2


class TestBipartiteGraph:
    def test_two_node_kinds(self):
        graph = bipartite_graph(figure1_model())
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"species", "reaction"}

    def test_roles(self):
        graph = bipartite_graph(figure1_model())
        assert graph["A"]["r1"]["role"] == "reactant"
        assert graph["r1"]["B"]["role"] == "product"

    def test_modifier_role(self):
        model = (
            ModelBuilder("m").compartment("c")
            .species("S").species("P").species("E")
            .parameter("v", 1.0).parameter("km", 1.0)
            .michaelis_menten("r", "S", "P", "v", "km", enzyme="E")
            .build()
        )
        graph = bipartite_graph(model)
        assert graph["E"]["r"]["role"] == "modifier"

    def test_stoichiometry_attribute(self):
        model = (
            ModelBuilder("m").compartment("c").species("A").species("B")
            .parameter("k", 1.0)
            .mass_action("r", [("A", 2)], ["B"], "k")
            .build()
        )
        graph = bipartite_graph(model)
        assert graph["A"]["r"]["stoichiometry"] == 2.0


def test_graph_size_matches_model():
    model = figure1_model()
    assert graph_size(model) == (3, 3)
    assert graph_size(model) == (model.num_nodes(), model.num_edges())


class TestIsomorphism:
    def test_same_network_isomorphic(self):
        assert isomorphic_networks(figure1_model(), figure1_model("other"))

    def test_different_topology_not_isomorphic(self):
        chain = (
            ModelBuilder("chain").compartment("c")
            .species("A", name="A").species("B", name="B")
            .species("C", name="C")
            .parameter("k", 1.0)
            .mass_action("r1", ["A"], ["B"], "k")
            .mass_action("r2", ["B"], ["C"], "k")
            .build()
        )
        assert not isomorphic_networks(figure1_model(), chain)

    def test_label_mismatch_not_isomorphic(self):
        a = (
            ModelBuilder("a").compartment("c")
            .species("x", name="glucose").build()
        )
        b = (
            ModelBuilder("b").compartment("c")
            .species("x", name="pyruvate").build()
        )
        assert not isomorphic_networks(a, b)
