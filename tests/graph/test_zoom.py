"""Unit tests for semantic graph zooming (future-work item 4)."""

import pytest

from repro import ModelBuilder
from repro.errors import ReproError
from repro.graph.zoom import ZoomIndex


def two_compartment_model():
    """Two disconnected chains in two compartments."""
    return (
        ModelBuilder("zoomy")
        .compartment("cytosol", size=1.0)
        .compartment("nucleus", size=0.1)
        .species("A", 1.0)
        .species("B", 0.0)
        .species("X", 1.0, compartment="nucleus")
        .species("Y", 0.0, compartment="nucleus")
        .parameter("k", 1.0)
        .mass_action("r1", ["A"], ["B"], "k")
        .mass_action("r2", ["X"], ["Y"], "k")
        .build()
    )


def bridged_model():
    """Chains connected across compartments (B -> X)."""
    model = two_compartment_model()
    from repro.sbml import Reaction, SpeciesReference, KineticLaw
    from repro.mathml import parse_infix

    model.add_reaction(
        Reaction(
            id="bridge",
            reactants=[SpeciesReference("B")],
            products=[SpeciesReference("X")],
            kinetic_law=KineticLaw(math=parse_infix("k * B")),
        )
    )
    return model


class TestHierarchy:
    def test_four_levels(self):
        index = ZoomIndex(two_compartment_model())
        assert index.depth == 4
        assert [level.name for level in index.levels] == [
            "species", "modules", "compartments", "model",
        ]

    def test_species_level_is_full_graph(self):
        index = ZoomIndex(two_compartment_model())
        assert set(index.graph_at(0).nodes) == {"A", "B", "X", "Y"}

    def test_modules_are_connected_components(self):
        index = ZoomIndex(two_compartment_model())
        modules = index.graph_at(1)
        assert modules.number_of_nodes() == 2
        assert modules.number_of_edges() == 0  # disconnected chains

    def test_compartment_level(self):
        index = ZoomIndex(two_compartment_model())
        compartments = index.graph_at(2)
        assert set(compartments.nodes) == {"cytosol", "nucleus"}

    def test_root_level_single_node(self):
        index = ZoomIndex(two_compartment_model())
        root = index.graph_at(3)
        assert root.number_of_nodes() == 1
        assert root.number_of_edges() == 0


class TestCrossBoundaryEdges:
    def test_bridge_survives_zoom_out(self):
        index = ZoomIndex(bridged_model())
        compartments = index.graph_at(2)
        # The B->X bridge appears as a cytosol->nucleus edge...
        # unless the bridge merges both chains into one module that
        # spans compartments.
        assert compartments.number_of_nodes() >= 1

    def test_bridge_weight_counts_arrows(self):
        index = ZoomIndex(
            bridged_model(),
            modules={"left": ["A", "B"], "right": ["X", "Y"]},
        )
        modules = index.graph_at(1)
        assert modules.has_edge("left", "right")
        edge_data = list(modules["left"]["right"].values())[0]
        assert edge_data["weight"] == 1

    def test_internal_edges_disappear(self):
        index = ZoomIndex(
            bridged_model(),
            modules={"left": ["A", "B"], "right": ["X", "Y"]},
        )
        modules = index.graph_at(1)
        # r1 and r2 are internal to their modules.
        assert modules.number_of_edges() == 1


class TestNavigation:
    def test_members_of_module(self):
        index = ZoomIndex(
            two_compartment_model(),
            modules={"left": ["A", "B"], "right": ["X", "Y"]},
        )
        assert index.members(1, "left") == {"A", "B"}

    def test_expand_module(self):
        index = ZoomIndex(
            two_compartment_model(),
            modules={"left": ["A", "B"], "right": ["X", "Y"]},
        )
        subgraph = index.expand(1, "left")
        assert set(subgraph.nodes) == {"A", "B"}
        assert subgraph.has_edge("A", "B")

    def test_leaves_from_root(self):
        index = ZoomIndex(two_compartment_model())
        root_node = list(index.graph_at(3).nodes)[0]
        assert index.leaves(3, root_node) == {"A", "B", "X", "Y"}

    def test_leaves_from_compartment(self):
        index = ZoomIndex(two_compartment_model())
        assert index.leaves(2, "nucleus") == {"X", "Y"}

    def test_unassigned_species_get_bucket(self):
        index = ZoomIndex(
            two_compartment_model(), modules={"left": ["A", "B"]}
        )
        assert index.members(1, "unassigned") == {"X", "Y"}

    def test_expand_below_species_rejected(self):
        index = ZoomIndex(two_compartment_model())
        with pytest.raises(ReproError):
            index.expand(0, "A")

    def test_bad_level_rejected(self):
        index = ZoomIndex(two_compartment_model())
        with pytest.raises(ReproError):
            index.graph_at(9)

    def test_unknown_node_rejected(self):
        index = ZoomIndex(two_compartment_model())
        with pytest.raises(ReproError):
            index.members(1, "ghost")
