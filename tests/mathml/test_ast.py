"""Unit tests for the expression AST."""

import pytest

from repro.mathml import (
    Apply,
    Constant,
    Identifier,
    Lambda,
    Number,
    Piecewise,
)


def test_number_coerces_to_float():
    assert Number(3).value == 3.0
    assert isinstance(Number(3).value, float)


def test_number_is_integer():
    assert Number(4.0).is_integer()
    assert not Number(4.5).is_integer()


def test_number_units_default_none():
    assert Number(1.0).units is None
    assert Number(1.0, "per_second").units == "per_second"


def test_structural_equality():
    a = Apply("plus", (Identifier("x"), Number(1)))
    b = Apply("plus", (Identifier("x"), Number(1)))
    assert a == b
    assert hash(a) == hash(b)


def test_structural_inequality_on_order():
    a = Apply("plus", (Identifier("x"), Number(1)))
    b = Apply("plus", (Number(1), Identifier("x")))
    assert a != b  # plain equality is structural; patterns handle order


def test_unknown_constant_rejected():
    with pytest.raises(ValueError):
        Constant("tau")


def test_walk_preorder():
    expr = Apply("times", (Identifier("k"), Identifier("A")))
    names = [type(node).__name__ for node in expr.walk()]
    assert names == ["Apply", "Identifier", "Identifier"]


def test_identifiers_collects_all():
    expr = Apply(
        "plus",
        (Identifier("a"), Apply("times", (Identifier("b"), Number(2)))),
    )
    assert expr.identifiers() == {"a", "b"}


def test_size_and_depth():
    expr = Apply("plus", (Identifier("a"), Apply("minus", (Number(1),))))
    assert expr.size() == 4
    assert expr.depth() == 3
    assert Number(1).depth() == 1


def test_substitute_replaces_identifier():
    expr = Apply("times", (Identifier("k"), Identifier("A")))
    replaced = expr.substitute({"A": Number(5)})
    assert replaced == Apply("times", (Identifier("k"), Number(5)))


def test_substitute_leaves_unmapped():
    expr = Identifier("x")
    assert expr.substitute({"y": Number(1)}) is expr


def test_rename_follows_mapping():
    expr = Apply("plus", (Identifier("old"), Identifier("keep")))
    renamed = expr.rename({"old": "new"})
    assert renamed == Apply("plus", (Identifier("new"), Identifier("keep")))


def test_rename_user_function_call():
    expr = Apply("f_old", (Identifier("x"),))
    renamed = expr.rename({"f_old": "f_new"})
    assert isinstance(renamed, Apply)
    assert renamed.op == "f_new"


def test_rename_does_not_touch_builtin_op():
    expr = Apply("plus", (Identifier("plus_val"),))
    renamed = expr.rename({"plus": "oops", "plus_val": "v"})
    assert renamed.op == "plus"
    assert renamed.args[0] == Identifier("v")


def test_lambda_shadows_substitution():
    body = Apply("plus", (Identifier("x"), Identifier("y")))
    fn = Lambda(("x",), body)
    replaced = fn.substitute({"x": Number(1), "y": Number(2)})
    assert replaced.body == Apply("plus", (Identifier("x"), Number(2)))


def test_lambda_free_identifiers():
    fn = Lambda(("x",), Apply("times", (Identifier("x"), Identifier("k"))))
    assert fn.free_identifiers() == {"k"}


def test_lambda_apply_to_inlines():
    fn = Lambda(("a", "b"), Apply("plus", (Identifier("a"), Identifier("b"))))
    inlined = fn.apply_to((Number(1), Identifier("z")))
    assert inlined == Apply("plus", (Number(1), Identifier("z")))


def test_lambda_apply_to_arity_mismatch():
    fn = Lambda(("a",), Identifier("a"))
    with pytest.raises(ValueError):
        fn.apply_to((Number(1), Number(2)))


def test_piecewise_children_include_otherwise():
    pw = Piecewise(
        ((Number(1), Constant("true")),),
        otherwise=Number(0),
    )
    assert len(pw.children()) == 3


def test_apply_is_commutative_flag():
    assert Apply("plus", ()).is_commutative
    assert Apply("times", ()).is_commutative
    assert not Apply("minus", (Number(1),)).is_commutative
    assert not Apply("divide", (Number(1), Number(2))).is_commutative


def test_apply_is_builtin_flag():
    assert Apply("plus", ()).is_builtin
    assert not Apply("my_function", ()).is_builtin
