"""Hash-consing, structural digests and copy-free substitution.

The tentpole invariants of the interned math core:

* structurally equal trees — however and wherever constructed — have
  identical digests, identical canonical patterns and identical
  ``math_key`` material, with or without hash-consing;
* hash-consed construction returns the *same object* for small nodes;
* ``substitute``/``rename`` preserve object identity whenever the
  bindings cannot touch the expression (the copy-free fast path);
* pickling and deep-copying round-trip through the constructors, so
  nodes re-intern on arrival and never carry stale caches.
"""

import copy
import pickle

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.corpus.biomodels_like import generate_model
from repro.mathml.ast import (
    Apply,
    Constant,
    Identifier,
    Lambda,
    Number,
    Piecewise,
    intern_cache_sizes,
    interning_disabled,
)
from repro.mathml.pattern import canonical_pattern
from repro.mathml.parser import parse_mathml
from repro.mathml.writer import write_mathml
from repro.mathml import parse_infix


def _structural_clone(node):
    """Rebuild a tree through the writer/parser round trip with
    interning off: structurally equal, sharing nothing."""
    with interning_disabled():
        return parse_mathml(write_mathml(node))


class TestInterning:
    def test_leaves_are_shared(self):
        assert Identifier("glucose") is Identifier("glucose")
        assert Number(2.5) is Number(2.5)
        assert Number(1) is Number(1.0)
        assert Constant("pi") is Constant("pi")

    def test_units_distinguish_numbers(self):
        assert Number(1.0, "mole") is not Number(1.0)
        assert Number(1.0, "mole") == Number(1.0, "mole")

    def test_small_apply_shared(self):
        first = Apply("times", (Identifier("k"), Identifier("A")))
        second = Apply("times", [Identifier("k"), Identifier("A")])
        assert first is second

    def test_negative_zero_not_conflated(self):
        # -0.0 == 0.0 numerically but renders differently; interning
        # must never silently rewrite one into the other.
        assert Number(-0.0) is not Number(0.0)

    def test_nan_never_interned(self):
        # NaN compares unequal even to itself; a shared object would
        # let identity shortcuts disagree with structural equality.
        assert Number(float("nan")) is not Number(float("nan"))

    def test_infinities_never_interned(self):
        assert Number(float("inf")) is not Number(float("inf"))
        assert Number(float("-inf")) is not Number(float("-inf"))

    def test_number_coerces_string_values(self):
        # The constructor keeps accepting anything float() accepts.
        assert Number("2.5") is Number(2.5)

    def test_apply_with_negative_zero_not_conflated(self):
        # Number equality follows float == (-0.0 == 0.0), so an
        # object-keyed apply table would collide these — and the
        # re-run __init__ would overwrite the shared node's args in
        # place, silently rewriting the first tree's literal.  The
        # digest-based key keeps them apart.
        positive = Apply("times", (Number(0.0), Identifier("x")))
        negative = Apply("times", (Number(-0.0), Identifier("x")))
        assert positive is not negative
        assert repr(positive.args[0].value) == "0.0"
        assert repr(negative.args[0].value) == "-0.0"
        assert positive.digest() != negative.digest()

    def test_apply_with_nan_never_interned(self):
        first = Apply("times", (Number(float("nan")), Identifier("x")))
        second = Apply("times", (Number(float("nan")), Identifier("x")))
        assert first is not second

    def test_large_apply_not_interned_but_equal(self):
        args = tuple(Identifier(f"x{i}") for i in range(6))
        assert Apply("plus", args) is not Apply("plus", args)
        assert Apply("plus", args) == Apply("plus", args)
        assert Apply("plus", args).digest() == Apply("plus", args).digest()

    def test_disabled_context_builds_fresh_objects(self):
        shared = Identifier("x")
        with interning_disabled():
            fresh = Identifier("x")
        assert fresh is not shared
        assert fresh == shared
        assert Identifier("x") is shared  # re-enabled afterwards

    def test_cache_sizes_reported(self):
        Identifier("a_size_probe")
        sizes = intern_cache_sizes()
        assert sizes["identifier"] >= 1


class TestDigest:
    def test_equal_trees_equal_digest_across_interning(self):
        expr = parse_infix("k1 * S1 * (S2 + 2.5) / (Km + S1)")
        clone = _structural_clone(expr)
        assert clone == expr and clone is not expr
        assert clone.digest() == expr.digest()

    def test_digest_distinguishes(self):
        assert parse_infix("a + b").digest() != parse_infix("a * b").digest()
        assert parse_infix("a + b").digest() != parse_infix("b + a").digest()
        assert Number(1).digest() != Number(1, "mole").digest()
        assert Identifier("pi").digest() != Constant("pi").digest()
        lam1 = Lambda(("x",), Identifier("x"))
        lam2 = Lambda(("x", "y"), Identifier("x"))
        assert lam1.digest() != lam2.digest()
        pw = Piecewise([(Number(1), parse_infix("x > 0"))], Number(0))
        pw_no_otherwise = Piecewise([(Number(1), parse_infix("x > 0"))])
        assert pw.digest() != pw_no_otherwise.digest()

    def test_digest_stable_value(self):
        # The digest must be deterministic across processes: pin one
        # value so accidental hash-seed dependence can never creep in.
        assert Identifier("x").digest() == Identifier("x").digest()
        assert len(Identifier("x").digest()) == 32
        int(Identifier("x").digest(), 16)  # hex

    def test_pickle_roundtrip_preserves_digest(self):
        expr = parse_infix("f(x) + piecewise_free * 3")
        clone = pickle.loads(pickle.dumps(expr))
        assert clone == expr
        assert clone.digest() == expr.digest()

    def test_pickle_reinterns_leaves(self):
        assert pickle.loads(pickle.dumps(Identifier("x"))) is Identifier("x")

    def test_deepcopy_equal(self):
        expr = parse_infix("k * A / (Km + A)")
        assert copy.deepcopy(expr) == expr


class TestNameSets:
    def test_identifiers_cached_and_correct(self):
        expr = parse_infix("k * A + f(B)")
        assert expr.identifiers() == frozenset({"k", "A", "B"})
        assert expr.identifiers() is expr.identifiers()  # cached

    def test_referenced_names_include_user_functions(self):
        expr = parse_infix("k * A + f(B)")
        assert expr.referenced_names() == frozenset({"k", "A", "B", "f"})
        # builtin operators never count
        assert "plus" not in parse_infix("a + b").referenced_names()


class TestCopyFreeSubstitution:
    def test_disjoint_substitute_returns_same_object(self):
        expr = parse_infix("k1 * S1 * S2")
        assert expr.substitute({"unrelated": Number(1)}) is expr

    def test_disjoint_rename_returns_same_object(self):
        expr = parse_infix("k1 * S1 * S2")
        assert expr.rename({"unrelated": "other"}) is expr

    def test_identity_rename_returns_same_object(self):
        # The regression the satellite names: an identity mapping used
        # to rebuild the whole tree.
        expr = parse_infix("k1 * S1 * S2")
        assert expr.rename({"S1": "S1", "k1": "k1"}) is expr

    def test_untouched_subtrees_shared_after_rename(self):
        expr = parse_infix("(k1 * S1) + (k2 * S2)")
        renamed = expr.rename({"S2": "glc"})
        assert renamed is not expr
        assert renamed.args[0] is expr.args[0]  # untouched branch shared
        assert renamed.identifiers() == frozenset({"k1", "S1", "k2", "glc"})

    def test_user_function_rename_not_skipped(self):
        # The fast path must account for function-call names, which
        # substitution rewrites even though they are not Identifiers.
        expr = parse_infix("f(x)")
        renamed = expr.rename({"f": "g"})
        assert renamed.op == "g"

    def test_lambda_shadowing_fast_path(self):
        lam = Lambda(("x",), parse_infix("x + y"))
        assert lam.substitute({"x": Number(1)}) is lam  # param shadows
        replaced = lam.substitute({"y": Number(2)})
        assert replaced.body == parse_infix("x + 2")


def _model_math(seed: int, n_nodes: int):
    rng = np.random.default_rng(seed)
    model = generate_model(0, n_nodes, rng)
    return list(model.all_math())


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_nodes=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_digest_and_pattern_invariant_under_interning(seed, n_nodes):
    """For BioModels-like expressions: a structurally equal tree built
    *without* hash-consing has the same digest, the same canonical
    pattern (the ``math_key`` material under heavy semantics) and the
    same structural equality — interning is invisible to every
    equality surface the engine uses."""
    for math in _model_math(seed, n_nodes):
        clone = _structural_clone(math)
        assert clone == math
        assert clone.digest() == math.digest()
        assert canonical_pattern(clone) == canonical_pattern(math)
        assert clone.identifiers() == math.identifiers()
        assert clone.referenced_names() == math.referenced_names()


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_nodes=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_disjoint_rename_is_identity_on_corpus_math(seed, n_nodes):
    """Renames that cannot touch an expression return the same object
    for every expression the generator produces."""
    for math in _model_math(seed, n_nodes):
        assert math.rename({"__no_such_id__": "x"}) is math
        identity = {name: name for name in math.identifiers()}
        assert math.rename(identity) is math
