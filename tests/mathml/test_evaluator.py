"""Unit tests for the AST evaluator."""

import math

import pytest

from repro.errors import MathDomainError, MathEvalError
from repro.mathml import (
    Apply,
    Evaluator,
    Identifier,
    Lambda,
    Number,
    evaluate,
    parse_infix,
)


def ev(formula, env=None, functions=None):
    return evaluate(parse_infix(formula), env or {}, functions)


def test_number():
    assert ev("42") == 42.0


def test_identifier_lookup():
    assert ev("x", {"x": 3.0}) == 3.0


def test_unbound_identifier():
    with pytest.raises(MathEvalError):
        ev("missing")


def test_arithmetic():
    assert ev("2 + 3 * 4") == 14.0
    assert ev("(2 + 3) * 4") == 20.0
    assert ev("10 / 4") == 2.5
    assert ev("2 ^ 10") == 1024.0
    assert ev("7 - 2 - 1") == 4.0


def test_unary_minus():
    assert ev("-x", {"x": 5.0}) == -5.0


def test_constants():
    assert ev("pi") == pytest.approx(math.pi)
    assert ev("exponentiale") == pytest.approx(math.e)
    assert ev("true") == 1.0
    assert ev("false") == 0.0


def test_transcendentals():
    assert ev("exp(0)") == 1.0
    assert ev("ln(exponentiale)") == pytest.approx(1.0)
    assert ev("log(100)") == pytest.approx(2.0)
    assert ev("log(2, 8)") == pytest.approx(3.0)
    assert ev("sqrt(16)") == 4.0
    assert ev("root(3, 27)") == pytest.approx(3.0)
    assert ev("sin(0)") == 0.0
    assert ev("cos(0)") == 1.0
    assert ev("tanh(0)") == 0.0


def test_floor_ceiling_abs():
    assert ev("floor(2.7)") == 2.0
    assert ev("ceiling(2.1)") == 3.0
    assert ev("abs(-4)") == 4.0


def test_factorial():
    assert ev("factorial(5)") == 120.0
    with pytest.raises(MathDomainError):
        ev("factorial(2.5)")


def test_division_by_zero():
    with pytest.raises(MathDomainError):
        ev("1 / 0")


def test_log_domain():
    with pytest.raises(MathDomainError):
        ev("ln(-1)")
    with pytest.raises(MathDomainError):
        ev("log(0)")


def test_sqrt_negative():
    with pytest.raises(MathDomainError):
        ev("sqrt(-4)")


def test_relational():
    assert ev("3 > 2") == 1.0
    assert ev("2 > 3") == 0.0
    assert ev("2 >= 2") == 1.0
    assert ev("2 == 2") == 1.0
    assert ev("2 != 2") == 0.0


def test_logical():
    assert ev("true && false") == 0.0
    assert ev("true || false") == 1.0
    assert ev("!false") == 1.0
    assert ev("true xor true") == 0.0
    assert ev("true xor false") == 1.0


def test_piecewise():
    assert ev("piecewise(1, x > 0, -1)", {"x": 5}) == 1.0
    assert ev("piecewise(1, x > 0, -1)", {"x": -5}) == -1.0


def test_piecewise_no_match_no_otherwise():
    with pytest.raises(MathEvalError):
        ev("piecewise(1, false)")


def test_mass_action_kinetics():
    # Paper Figure 10: rate = k1*[A]
    assert ev("k1 * A", {"k1": 0.5, "A": 4.0}) == 2.0


def test_michaelis_menten_kinetics():
    # Paper Figure 12: V = Vmax*[A]/(KM+[A]); at [A]=KM, V = Vmax/2.
    value = ev("Vmax * A / (KM + A)", {"Vmax": 10.0, "A": 2.0, "KM": 2.0})
    assert value == pytest.approx(5.0)


def test_user_function_definition():
    mm = Lambda(
        ("S", "Vmax", "Km"),
        parse_infix("Vmax * S / (Km + S)"),
    )
    value = ev("MM(2, 10, 2)", functions={"MM": mm})
    assert value == pytest.approx(5.0)


def test_user_function_wrong_arity():
    fn = Lambda(("x",), Identifier("x"))
    with pytest.raises(MathEvalError):
        ev("f(1, 2)", functions={"f": fn})


def test_unknown_function():
    with pytest.raises(MathEvalError):
        ev("nosuch(1)")


def test_recursive_function_fails_cleanly():
    # SBML forbids recursion; the evaluator must not blow the stack.
    fn = Lambda(("x",), Apply("f", (Identifier("x"),)))
    evaluator = Evaluator({"f": fn}, max_depth=50)
    with pytest.raises(MathEvalError):
        evaluator.evaluate(Apply("f", (Number(1),)), {})


def test_nested_function_calls():
    double = Lambda(("x",), parse_infix("2 * x"))
    value = ev("d(d(3))", functions={"d": double})
    assert value == 12.0


def test_bare_lambda_not_evaluable():
    with pytest.raises(MathEvalError):
        evaluate(Lambda(("x",), Identifier("x")))


def test_complex_power_rejected():
    with pytest.raises(MathDomainError):
        ev("(-1) ^ 0.5")
