"""Unit tests for the infix parser and printer."""

import pytest

from repro.errors import MathParseError
from repro.mathml import (
    Apply,
    Constant,
    Identifier,
    Number,
    Piecewise,
    parse_infix,
    to_infix,
)


def test_parse_number():
    assert parse_infix("3.5") == Number(3.5)


def test_parse_scientific_number():
    assert parse_infix("6.022e23") == Number(6.022e23)


def test_parse_identifier():
    assert parse_infix("k1") == Identifier("k1")


def test_parse_constants():
    assert parse_infix("pi") == Constant("pi")
    assert parse_infix("true") == Constant("true")
    assert parse_infix("INF") == Constant("infinity")
    assert parse_infix("NaN") == Constant("notanumber")


def test_parse_simple_product():
    node = parse_infix("k1 * A")
    assert node == Apply("times", (Identifier("k1"), Identifier("A")))


def test_nary_chain_flattened():
    node = parse_infix("a + b + c")
    assert node.op == "plus"
    assert len(node.args) == 3


def test_precedence_mul_over_add():
    node = parse_infix("a + b * c")
    assert node.op == "plus"
    assert node.args[1].op == "times"


def test_parentheses_override():
    node = parse_infix("(a + b) * c")
    assert node.op == "times"
    assert node.args[0].op == "plus"


def test_power_right_associative():
    node = parse_infix("a ^ b ^ c")
    assert node.op == "power"
    assert node.args[1].op == "power"


def test_unary_minus_number():
    assert parse_infix("-4") == Number(-4.0)


def test_unary_minus_expression():
    node = parse_infix("-x")
    assert node == Apply("minus", (Identifier("x"),))


def test_subtraction_left_associative():
    node = parse_infix("a - b - c")
    assert node.op == "minus"
    assert node.args[0].op == "minus"


def test_relational():
    node = parse_infix("x >= 2")
    assert node == Apply("geq", (Identifier("x"), Number(2)))


def test_logical_keywords():
    node = parse_infix("a > 1 and b < 2")
    assert node.op == "and"


def test_logical_symbols():
    node = parse_infix("(a > 1) && (b < 2) || c == 3")
    assert node.op == "or"


def test_not_prefix():
    node = parse_infix("!x")
    assert node == Apply("not", (Identifier("x"),))
    assert parse_infix("not x") == node


def test_function_call_unary():
    node = parse_infix("exp(x)")
    assert node == Apply("exp", (Identifier("x"),))


def test_log_is_base_10():
    node = parse_infix("log(x)")
    assert node == Apply("log", (Number(10), Identifier("x")))


def test_log_with_base():
    node = parse_infix("log(2, x)")
    assert node == Apply("log", (Number(2), Identifier("x")))


def test_sqrt_is_root_2():
    node = parse_infix("sqrt(x)")
    assert node == Apply("root", (Number(2), Identifier("x")))


def test_pow_function():
    assert parse_infix("pow(x, 2)") == Apply(
        "power", (Identifier("x"), Number(2))
    )


def test_piecewise_call():
    node = parse_infix("piecewise(1, x > 0, 0)")
    assert isinstance(node, Piecewise)
    assert node.otherwise == Number(0)


def test_user_function_call():
    node = parse_infix("MM(S, Vmax, Km)")
    assert node.op == "MM"
    assert len(node.args) == 3


def test_michaelis_menten_formula():
    # Paper Figure 12: V = Vmax * [A] / (KM + [A])
    node = parse_infix("Vmax * A / (KM + A)")
    assert node.op == "divide"
    assert node.args[0].op == "times"
    assert node.args[1].op == "plus"


def test_mass_action_reversible():
    # Paper Figure 11: k1[A] - k2[B]
    node = parse_infix("k1*A - k2*B")
    assert node.op == "minus"


def test_empty_formula_rejected():
    with pytest.raises(MathParseError):
        parse_infix("   ")


def test_trailing_garbage_rejected():
    with pytest.raises(MathParseError):
        parse_infix("a + b )")


def test_unbalanced_parens_rejected():
    with pytest.raises(MathParseError):
        parse_infix("(a + b")


def test_bad_character_rejected():
    with pytest.raises(MathParseError):
        parse_infix("a $ b")


def test_wrong_arity_rejected():
    with pytest.raises(MathParseError):
        parse_infix("exp(a, b)")


@pytest.mark.parametrize(
    "formula",
    [
        "k1 * A",
        "a + b * c",
        "(a + b) * c",
        "a - b - c",
        "a / b / c",
        "a ^ b ^ c",
        "-x",
        "exp(-k * t)",
        "Vmax * A / (KM + A)",
        "piecewise(1, x > 0, 0)",
        "log(2, x)",
        "sqrt(y)",
        "a > 1 && b < 2",
        "MM(S, 4.5, Km)",
        "k1 * A - k2 * B",
    ],
)
def test_round_trip_reparses_identically(formula):
    node = parse_infix(formula)
    assert parse_infix(to_infix(node)) == node


def test_to_infix_simple():
    assert to_infix(parse_infix("k1*A")) == "k1 * A"


def test_to_infix_preserves_needed_parens():
    text = to_infix(parse_infix("(a+b)*c"))
    assert "(" in text
    assert parse_infix(text) == parse_infix("(a+b)*c")
