"""Unit tests for the MathML parser."""

import pytest

from repro.errors import MathParseError
from repro.mathml import (
    Apply,
    Constant,
    Identifier,
    Lambda,
    Number,
    Piecewise,
    parse_mathml,
)

MATH = '<math xmlns="http://www.w3.org/1998/Math/MathML">{}</math>'


def parse(body):
    return parse_mathml(MATH.format(body))


def test_parse_ci():
    assert parse("<ci> S1 </ci>") == Identifier("S1")


def test_parse_cn_real():
    assert parse("<cn>4.5</cn>") == Number(4.5)


def test_parse_cn_integer():
    assert parse('<cn type="integer">7</cn>') == Number(7.0)


def test_parse_cn_e_notation():
    node = parse('<cn type="e-notation">6.022<sep/>23</cn>')
    assert node.value == pytest.approx(6.022e23)


def test_parse_cn_rational():
    assert parse('<cn type="rational">1<sep/>4</cn>') == Number(0.25)


def test_parse_cn_rational_zero_denominator():
    with pytest.raises(MathParseError):
        parse('<cn type="rational">1<sep/>0</cn>')


def test_parse_cn_units_attribute():
    node = parse('<cn units="per_second">2</cn>')
    assert node.units == "per_second"


def test_parse_constants():
    assert parse("<pi/>") == Constant("pi")
    assert parse("<exponentiale/>") == Constant("exponentiale")
    assert parse("<true/>") == Constant("true")
    assert parse("<infinity/>") == Constant("infinity")


def test_parse_apply_times():
    node = parse(
        "<apply><times/><ci>k1</ci><ci>A</ci></apply>"
    )
    assert node == Apply("times", (Identifier("k1"), Identifier("A")))


def test_parse_nary_plus():
    node = parse(
        "<apply><plus/><ci>a</ci><ci>b</ci><ci>c</ci></apply>"
    )
    assert node.op == "plus"
    assert len(node.args) == 3


def test_parse_unary_minus():
    node = parse("<apply><minus/><ci>x</ci></apply>")
    assert node == Apply("minus", (Identifier("x"),))


def test_parse_minus_three_args_rejected():
    with pytest.raises(MathParseError):
        parse("<apply><minus/><ci>a</ci><ci>b</ci><ci>c</ci></apply>")


def test_parse_root_with_degree():
    node = parse(
        "<apply><root/><degree><cn>3</cn></degree><ci>x</ci></apply>"
    )
    assert node == Apply("root", (Number(3), Identifier("x")))


def test_parse_root_default_degree():
    node = parse("<apply><root/><ci>x</ci></apply>")
    assert node == Apply("root", (Number(2), Identifier("x")))


def test_parse_log_with_base():
    node = parse(
        "<apply><log/><logbase><cn>2</cn></logbase><ci>x</ci></apply>"
    )
    assert node == Apply("log", (Number(2), Identifier("x")))


def test_parse_log_default_base_10():
    node = parse("<apply><log/><ci>x</ci></apply>")
    assert node == Apply("log", (Number(10), Identifier("x")))


def test_parse_user_function_call():
    node = parse("<apply><ci>MM</ci><ci>S</ci><ci>Vmax</ci></apply>")
    assert node == Apply("MM", (Identifier("S"), Identifier("Vmax")))


def test_parse_csymbol_time():
    node = parse(
        '<csymbol definitionURL="http://www.sbml.org/sbml/symbols/time">'
        "t</csymbol>"
    )
    assert node == Identifier("time")


def test_parse_piecewise():
    node = parse(
        "<piecewise>"
        "<piece><cn>1</cn><apply><gt/><ci>x</ci><cn>0</cn></apply></piece>"
        "<otherwise><cn>0</cn></otherwise>"
        "</piecewise>"
    )
    assert isinstance(node, Piecewise)
    assert len(node.pieces) == 1
    assert node.otherwise == Number(0)


def test_parse_lambda():
    node = parse(
        "<lambda><bvar><ci>x</ci></bvar>"
        "<apply><times/><ci>x</ci><cn>2</cn></apply></lambda>"
    )
    assert node == Lambda(
        ("x",), Apply("times", (Identifier("x"), Number(2)))
    )


def test_parse_lambda_no_body_rejected():
    with pytest.raises(MathParseError):
        parse("<lambda><bvar><ci>x</ci></bvar></lambda>")


def test_parse_empty_apply_rejected():
    with pytest.raises(MathParseError):
        parse("<apply></apply>")


def test_parse_empty_ci_rejected():
    with pytest.raises(MathParseError):
        parse("<ci>  </ci>")


def test_parse_malformed_xml_rejected():
    with pytest.raises(MathParseError):
        parse_mathml("<math><apply>")


def test_parse_unknown_element_rejected():
    with pytest.raises(MathParseError):
        parse("<matrix/>")


def test_parse_math_with_two_children_rejected():
    with pytest.raises(MathParseError):
        parse("<ci>a</ci><ci>b</ci>")


def test_parse_relational_chain():
    node = parse(
        "<apply><lt/><cn>1</cn><cn>2</cn><cn>3</cn></apply>"
    )
    assert node.op == "lt"
    assert len(node.args) == 3
