"""Unit tests for commutative canonical patterns (paper Figure 7)."""

from repro.mathml import (
    Apply,
    Identifier,
    Lambda,
    Number,
    PatternIndex,
    canonical_pattern,
    flatten,
    math_equivalent,
    parse_infix,
)


def eq(a, b, mapping=None):
    return math_equivalent(parse_infix(a), parse_infix(b), mapping)


def test_identical_expressions_match():
    assert eq("k1 * A", "k1 * A")


def test_commutative_times_matches():
    # The paper's motivating case: operand order must not matter.
    assert eq("k1 * A * B", "B * k1 * A")


def test_commutative_plus_matches():
    assert eq("a + b + c", "c + a + b")


def test_non_commutative_minus_does_not_match():
    assert not eq("a - b", "b - a")


def test_non_commutative_divide_does_not_match():
    assert not eq("a / b", "b / a")


def test_associative_grouping_matches():
    assert eq("(a + b) + c", "a + (b + c)")
    assert eq("(a * b) * c", "a * (b * c)")


def test_mixed_nesting_matches():
    assert eq("k1*A - k2*B", "A*k1 - B*k2")


def test_mixed_nesting_respects_outer_order():
    assert not eq("k1*A - k2*B", "k2*B - k1*A")


def test_number_spelling_normalised():
    assert eq("2 * x", "2.0 * x")


def test_different_numbers_differ():
    assert not eq("2 * x", "3 * x")


def test_relational_eq_commutative():
    assert eq("x == y", "y == x")


def test_relational_lt_not_commutative():
    assert not eq("x < y", "y < x")


def test_logical_and_commutative():
    assert eq("a && b", "b && a")


def test_mapping_unifies_renamed_identifiers():
    # After species A2 in model 2 is united with A1 in model 1, the
    # kinetic laws must compare equal ("after applying mappings").
    assert eq("k * A1", "k * A2", mapping={"A2": "A1"})


def test_mapping_chain_followed():
    assert eq("x", "z", mapping={"z": "y", "y": "x"})


def test_mapping_cycle_does_not_hang():
    pattern = canonical_pattern(
        Identifier("a"), mapping={"a": "b", "b": "a"}
    )
    assert pattern  # terminates with some stable name


def test_mapping_applies_to_function_calls():
    assert eq("f2(x)", "f1(x)", mapping={"f2": "f1"})


def test_lambda_alpha_equivalence():
    first = Lambda(("x",), parse_infix("x * k"))
    second = Lambda(("y",), parse_infix("y * k"))
    assert canonical_pattern(first) == canonical_pattern(second)


def test_lambda_different_arity_differs():
    first = Lambda(("x",), Identifier("x"))
    second = Lambda(("x", "y"), Identifier("x"))
    assert canonical_pattern(first) != canonical_pattern(second)


def test_flatten_nested_plus():
    node = parse_infix("a + (b + c)")
    flat = flatten(node)
    assert flat.op == "plus"
    assert len(flat.args) == 3


def test_flatten_keeps_non_associative():
    node = parse_infix("a - (b - c)")
    flat = flatten(node)
    assert flat.op == "minus"
    assert isinstance(flat.args[1], Apply)


def test_piecewise_patterns():
    a = parse_infix("piecewise(1, x > 0, 0)")
    b = parse_infix("piecewise(1, x > 0, 0)")
    c = parse_infix("piecewise(2, x > 0, 0)")
    assert canonical_pattern(a) == canonical_pattern(b)
    assert canonical_pattern(a) != canonical_pattern(c)


def test_identifier_and_similar_number_do_not_collide():
    assert canonical_pattern(Identifier("1")) != canonical_pattern(Number(1))


class TestPatternIndex:
    def test_add_and_find(self):
        index = PatternIndex()
        index.add(parse_infix("k1 * A * B"), "lawX")
        assert index.find(parse_infix("B * A * k1")) == "lawX"

    def test_find_missing_returns_none(self):
        index = PatternIndex()
        assert index.find(parse_infix("x")) is None

    def test_first_payload_wins(self):
        index = PatternIndex()
        index.add(parse_infix("a + b"), "first")
        index.add(parse_infix("b + a"), "second")
        assert index.find(parse_infix("a + b")) == "first"
        assert len(index) == 1

    def test_mapping_rekeys_existing_entries(self):
        index = PatternIndex()
        index.add(parse_infix("k * A1"), "law1")
        assert index.find(parse_infix("k * A2")) is None
        index.add_mapping("A2", "A1")
        assert index.find(parse_infix("k * A2")) == "law1"

    def test_mapping_noop_for_same_name(self):
        index = PatternIndex()
        index.add(parse_infix("x"), "v")
        index.add_mapping("x", "x")
        assert index.find(parse_infix("x")) == "v"
