"""Property-based tests for the math engine (hypothesis).

Invariants:

* MathML and infix round trips are lossless,
* canonical patterns are invariant under commutative-operand
  permutation and associative regrouping,
* pattern equality implies value equality (on shared environments),
* simplification preserves value and pattern-equality classes.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MathError
from repro.mathml import (
    Apply,
    Constant,
    Identifier,
    Number,
    canonical_pattern,
    evaluate,
    math_equivalent,
    parse_infix,
    parse_mathml,
    simplify,
    to_infix,
    write_mathml,
)

IDENTIFIERS = ("A", "B", "k1", "k2", "S", "Vmax", "Km", "x", "y")

identifiers = st.sampled_from(IDENTIFIERS).map(Identifier)
numbers = st.one_of(
    st.integers(min_value=-100, max_value=100).map(lambda v: Number(float(v))),
    st.floats(
        min_value=-100,
        max_value=100,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ).map(lambda v: Number(round(float(v), 6))),
)
constants = st.sampled_from(["pi", "exponentiale"]).map(Constant)
leaves = st.one_of(identifiers, numbers, constants)


def _apply_node(children):
    op, args = children
    return Apply(op, tuple(args))


expressions = st.recursive(
    leaves,
    lambda inner: st.one_of(
        st.tuples(
            st.sampled_from(["plus", "times"]),
            st.lists(inner, min_size=2, max_size=4),
        ).map(_apply_node),
        st.tuples(
            st.sampled_from(["minus", "divide", "power"]),
            st.lists(inner, min_size=2, max_size=2),
        ).map(_apply_node),
        st.tuples(
            st.sampled_from(["exp", "sin", "cos", "abs"]),
            st.lists(inner, min_size=1, max_size=1),
        ).map(_apply_node),
    ),
    max_leaves=12,
)


@given(expressions)
@settings(max_examples=150, deadline=None)
def test_mathml_round_trip(expr):
    assert parse_mathml(write_mathml(expr)) == expr


@given(expressions)
@settings(max_examples=150, deadline=None)
def test_infix_round_trip_preserves_pattern(expr):
    # Infix rendering may reassociate n-ary chains; the canonical
    # pattern (which flattens) must survive exactly.
    rendered = to_infix(expr)
    reparsed = parse_infix(rendered)
    assert canonical_pattern(reparsed) == canonical_pattern(expr)


@given(expressions, st.randoms())
@settings(max_examples=150, deadline=None)
def test_pattern_invariant_under_commutative_shuffle(expr, rng):
    def shuffle(node):
        if isinstance(node, Apply):
            args = [shuffle(arg) for arg in node.args]
            if node.is_commutative:
                rng.shuffle(args)
            return Apply(node.op, tuple(args))
        return node

    shuffled = shuffle(expr)
    assert math_equivalent(expr, shuffled)


@given(st.lists(leaves, min_size=3, max_size=6), st.randoms())
@settings(max_examples=100, deadline=None)
def test_pattern_invariant_under_regrouping(args, rng):
    def group(items):
        if len(items) == 1:
            return items[0]
        split = rng.randint(1, len(items) - 1)
        return Apply("plus", (group(items[:split]), group(items[split:])))

    flat = Apply("plus", tuple(args))
    nested = group(list(args))
    assert math_equivalent(flat, nested)


def _perturb_literals(node, index=None):
    """Copy ``node`` with every numeric literal scaled by a small,
    *distinct* relative factor (≤ 8e-12).

    Distinct factors matter: two syntactically identical large
    subtrees (e.g. ``100^50`` and ``-(100^50)``) perturbed by the same
    factor would still cancel exactly and hide their ill-conditioning
    from the probe below.
    """
    if index is None:
        index = [0]
    if isinstance(node, Apply):
        return Apply(
            node.op,
            tuple(_perturb_literals(arg, index) for arg in node.args),
        )
    if isinstance(node, Number):
        index[0] += 1
        return Number(node.value * (1.0 + 1e-12 * (index[0] % 7 + 1)))
    return node


def _ulp_comparable_value(expr, env):
    """The value of ``expr`` if it is well-conditioned at ulp scale,
    else ``None`` (outside the property's domain).

    The probe perturbs **every** input of the float computation by
    ~1e-12 relative — the identifiers (via ``env``) and the numeric
    literals (via :func:`_perturb_literals`) — and requires the output
    to move by at most ``1e-10 * max(1, |value|)``.  Literal
    perturbation is what catches catastrophic cancellation such as
    ``(x + 1e100) - 1e100``: the output is completely insensitive to
    ``x`` (an identifier-only nudge moves nothing), yet the original
    evaluation has discarded ``x`` while exact literal folding
    recovers it — the simplified form is the *more* accurate one, and
    no tolerance can reconcile the two float evaluations.
    """
    try:
        original = evaluate(expr, env)
        nudged_ids = evaluate(
            expr, {name: value * (1.0 + 1e-12) for name, value in env.items()}
        )
        nudged_literals = evaluate(_perturb_literals(expr), env)
    except MathError:
        return None  # outside the evaluation domain: nothing to compare
    values = (original, nudged_ids, nudged_literals)
    if not all(math.isfinite(value) for value in values):
        return None
    bound = 1e-10 * max(1.0, abs(original))
    if abs(nudged_ids - original) > bound:
        return None
    if abs(nudged_literals - original) > bound:
        return None
    return original


@given(expressions)
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_value(expr):
    """Tolerance contract: on expressions that are well-conditioned at
    ulp scale in *all* their inputs (identifiers and literals — see
    :func:`_ulp_comparable_value`), simplification preserves the
    float-evaluated value within ``rel=1e-9, abs=1e-9``.

    The slack exists because :func:`simplify` legitimately
    reassociates arithmetic (flattening n-ary chains, folding literal
    operands together), which perturbs intermediates at ulp scale; a
    condition number of ~10 — the most the probe admits — amplifies
    that to ~1e-10, an order of magnitude inside the tolerance.
    Ill-conditioned expressions are outside the contract's domain, not
    tolerated more loosely: for them the original float evaluation
    itself is meaningless (e.g. ``sin`` of a ~1e7 product, or literal
    cancellation that has already swallowed an identifier), so no
    fixed tolerance separates correct simplification from a bug.  The
    deterministic cases below pin both exclusion classes.
    """
    env = {name: 1.5 + 0.25 * index for index, name in enumerate(IDENTIFIERS)}
    original = _ulp_comparable_value(expr, env)
    if original is None:
        return
    simplified = simplify(expr)
    result = evaluate(simplified, env)
    assert result == pytest.approx(original, rel=1e-9, abs=1e-9)


def test_conditioning_probe_excludes_literal_cancellation():
    """The PR-1 identifier-only probe admitted this expression —
    ``(x + 100^50) - 100^50`` evaluates to 0.0 however the
    *identifiers* are nudged, yet simplification folds the literals
    exactly and returns ``x``.  The strengthened probe must exclude
    it: the original evaluation discarded ``x`` (catastrophic
    cancellation), so the two float values are not comparable."""
    env = {name: 1.5 + 0.25 * index for index, name in enumerate(IDENTIFIERS)}
    big = Apply("power", (Number(100.0), Number(50.0)))
    expr = Apply(
        "plus", (Identifier("x"), big, Apply("minus", (big,)))
    )
    assert evaluate(expr, env) == 0.0  # x swallowed by the intermediate
    assert evaluate(simplify(expr), env) == env["x"]  # folding recovers it
    assert _ulp_comparable_value(expr, env) is None


def test_conditioning_probe_excludes_huge_trig_argument():
    """The original exclusion class: ``sin`` of a ~1e8 product moves
    macroscopically under a 1e-12 input nudge."""
    env = {name: 1.5 + 0.25 * index for index, name in enumerate(IDENTIFIERS)}
    expr = Apply(
        "sin",
        (
            Apply(
                "times",
                (Number(100.0), Number(100.0), Number(100.0), Number(100.0)),
            ),
        ),
    )
    assert _ulp_comparable_value(expr, env) is None


def test_conditioning_probe_admits_kinetic_law_shapes():
    """The expressions the composer actually meets — mass-action and
    Michaelis-Menten shapes — are well-conditioned and stay inside
    the property's domain."""
    env = {name: 1.5 + 0.25 * index for index, name in enumerate(IDENTIFIERS)}
    for formula in (
        Apply("times", (Identifier("k1"), Identifier("A"))),
        Apply(
            "minus",
            (
                Apply("times", (Identifier("k1"), Identifier("A"))),
                Apply("times", (Identifier("k2"), Identifier("B"))),
            ),
        ),
        Apply(
            "divide",
            (
                Apply("times", (Identifier("Vmax"), Identifier("S"))),
                Apply("plus", (Identifier("Km"), Identifier("S"))),
            ),
        ),
    ):
        value = _ulp_comparable_value(formula, env)
        assert value is not None
        assert evaluate(simplify(formula), env) == pytest.approx(
            value, rel=1e-9, abs=1e-9
        )


@given(expressions, expressions)
@settings(max_examples=100, deadline=None)
def test_pattern_equality_implies_value_equality(first, second):
    if not math_equivalent(first, second):
        return
    env = {name: 0.75 + 0.5 * index for index, name in enumerate(IDENTIFIERS)}
    try:
        value_first = evaluate(first, env)
        value_second = evaluate(second, env)
    except MathError:
        return
    if math.isfinite(value_first) and math.isfinite(value_second):
        assert value_first == pytest.approx(value_second, rel=1e-9, abs=1e-9)


@given(expressions)
@settings(max_examples=100, deadline=None)
def test_pattern_is_deterministic(expr):
    assert canonical_pattern(expr) == canonical_pattern(expr)


@given(expressions, st.sampled_from(IDENTIFIERS), st.sampled_from(IDENTIFIERS))
@settings(max_examples=100, deadline=None)
def test_rename_then_pattern_equals_pattern_with_mapping(expr, old, new):
    renamed = expr.rename({old: new})
    assert canonical_pattern(renamed) == canonical_pattern(
        expr, mapping={old: new}
    )
