"""Property-based tests for the math engine (hypothesis).

Invariants:

* MathML and infix round trips are lossless,
* canonical patterns are invariant under commutative-operand
  permutation and associative regrouping,
* pattern equality implies value equality (on shared environments),
* simplification preserves value and pattern-equality classes.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MathError
from repro.mathml import (
    Apply,
    Constant,
    Identifier,
    Number,
    canonical_pattern,
    evaluate,
    math_equivalent,
    parse_infix,
    parse_mathml,
    simplify,
    to_infix,
    write_mathml,
)

IDENTIFIERS = ("A", "B", "k1", "k2", "S", "Vmax", "Km", "x", "y")

identifiers = st.sampled_from(IDENTIFIERS).map(Identifier)
numbers = st.one_of(
    st.integers(min_value=-100, max_value=100).map(lambda v: Number(float(v))),
    st.floats(
        min_value=-100,
        max_value=100,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ).map(lambda v: Number(round(float(v), 6))),
)
constants = st.sampled_from(["pi", "exponentiale"]).map(Constant)
leaves = st.one_of(identifiers, numbers, constants)


def _apply_node(children):
    op, args = children
    return Apply(op, tuple(args))


expressions = st.recursive(
    leaves,
    lambda inner: st.one_of(
        st.tuples(
            st.sampled_from(["plus", "times"]),
            st.lists(inner, min_size=2, max_size=4),
        ).map(_apply_node),
        st.tuples(
            st.sampled_from(["minus", "divide", "power"]),
            st.lists(inner, min_size=2, max_size=2),
        ).map(_apply_node),
        st.tuples(
            st.sampled_from(["exp", "sin", "cos", "abs"]),
            st.lists(inner, min_size=1, max_size=1),
        ).map(_apply_node),
    ),
    max_leaves=12,
)


@given(expressions)
@settings(max_examples=150, deadline=None)
def test_mathml_round_trip(expr):
    assert parse_mathml(write_mathml(expr)) == expr


@given(expressions)
@settings(max_examples=150, deadline=None)
def test_infix_round_trip_preserves_pattern(expr):
    # Infix rendering may reassociate n-ary chains; the canonical
    # pattern (which flattens) must survive exactly.
    rendered = to_infix(expr)
    reparsed = parse_infix(rendered)
    assert canonical_pattern(reparsed) == canonical_pattern(expr)


@given(expressions, st.randoms())
@settings(max_examples=150, deadline=None)
def test_pattern_invariant_under_commutative_shuffle(expr, rng):
    def shuffle(node):
        if isinstance(node, Apply):
            args = [shuffle(arg) for arg in node.args]
            if node.is_commutative:
                rng.shuffle(args)
            return Apply(node.op, tuple(args))
        return node

    shuffled = shuffle(expr)
    assert math_equivalent(expr, shuffled)


@given(st.lists(leaves, min_size=3, max_size=6), st.randoms())
@settings(max_examples=100, deadline=None)
def test_pattern_invariant_under_regrouping(args, rng):
    def group(items):
        if len(items) == 1:
            return items[0]
        split = rng.randint(1, len(items) - 1)
        return Apply("plus", (group(items[:split]), group(items[split:])))

    flat = Apply("plus", tuple(args))
    nested = group(list(args))
    assert math_equivalent(flat, nested)


@given(expressions)
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_value(expr):
    env = {name: 1.5 + 0.25 * index for index, name in enumerate(IDENTIFIERS)}
    try:
        original = evaluate(expr, env)
        # Conditioning probe: how far does a tiny relative nudge of
        # the inputs move the output?  Simplification legitimately
        # reassociates arithmetic, perturbing intermediates at ulp
        # scale; for ill-conditioned expressions (e.g. sin of a huge
        # product, where a few-ulp shift of the ~1e7 argument moves
        # the result by ~1e-9) no fixed tolerance separates correct
        # simplification from a bug, so those inputs are outside the
        # property's domain — the assertion itself stays strict.
        nudged = evaluate(
            expr, {name: value * (1.0 + 1e-12) for name, value in env.items()}
        )
    except MathError:
        return  # outside the evaluation domain: nothing to compare
    if not (math.isfinite(original) and math.isfinite(nudged)):
        return
    if abs(nudged - original) > 1e-10 * max(1.0, abs(original)):
        return  # ill-conditioned at ulp scale: value not comparable
    simplified = simplify(expr)
    result = evaluate(simplified, env)
    assert result == pytest.approx(original, rel=1e-9, abs=1e-9)


@given(expressions, expressions)
@settings(max_examples=100, deadline=None)
def test_pattern_equality_implies_value_equality(first, second):
    if not math_equivalent(first, second):
        return
    env = {name: 0.75 + 0.5 * index for index, name in enumerate(IDENTIFIERS)}
    try:
        value_first = evaluate(first, env)
        value_second = evaluate(second, env)
    except MathError:
        return
    if math.isfinite(value_first) and math.isfinite(value_second):
        assert value_first == pytest.approx(value_second, rel=1e-9, abs=1e-9)


@given(expressions)
@settings(max_examples=100, deadline=None)
def test_pattern_is_deterministic(expr):
    assert canonical_pattern(expr) == canonical_pattern(expr)


@given(expressions, st.sampled_from(IDENTIFIERS), st.sampled_from(IDENTIFIERS))
@settings(max_examples=100, deadline=None)
def test_rename_then_pattern_equals_pattern_with_mapping(expr, old, new):
    renamed = expr.rename({old: new})
    assert canonical_pattern(renamed) == canonical_pattern(
        expr, mapping={old: new}
    )
