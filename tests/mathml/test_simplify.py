"""Unit tests for the conservative simplifier."""

import pytest

from repro.mathml import (
    Apply,
    Constant,
    Identifier,
    Number,
    Piecewise,
    evaluate,
    parse_infix,
    simplify,
)


def simp(formula):
    return simplify(parse_infix(formula))


def test_constant_folding():
    assert simp("2 + 3") == Number(5)
    assert simp("2 * 3 * 4") == Number(24)
    assert simp("2 ^ 10") == Number(1024)


def test_identity_addition():
    assert simp("x + 0") == Identifier("x")
    assert simp("0 + x") == Identifier("x")


def test_identity_multiplication():
    assert simp("x * 1") == Identifier("x")
    assert simp("1 * x * 1") == Identifier("x")


def test_partial_literal_collection():
    node = simp("2 * x * 3")
    assert node.op == "times"
    assert Number(6) in node.args
    assert Identifier("x") in node.args


def test_subtract_zero():
    assert simp("x - 0") == Identifier("x")


def test_zero_minus_x_becomes_negation():
    assert simp("0 - x") == Apply("minus", (Identifier("x"),))


def test_divide_by_one():
    assert simp("x / 1") == Identifier("x")


def test_zero_divided():
    assert simp("0 / x") == Number(0)


def test_power_one():
    assert simp("x ^ 1") == Identifier("x")


def test_power_zero():
    assert simp("x ^ 0") == Number(1)


def test_double_negation():
    node = simplify(
        Apply("minus", (Apply("minus", (Identifier("x"),)),))
    )
    assert node == Identifier("x")


def test_logical_identity():
    assert simp("x > 1 && true") == parse_infix("x > 1")
    assert simp("x > 1 || false") == parse_infix("x > 1")


def test_logical_absorbing():
    assert simp("x > 1 && false") == Constant("false")
    assert simp("x > 1 || true") == Constant("true")


def test_double_not():
    assert simp("!!x") == Identifier("x")


def test_piecewise_dead_branch_removed():
    node = simp("piecewise(1, false, 2, x > 0, 3)")
    assert isinstance(node, Piecewise)
    assert len(node.pieces) == 1


def test_piecewise_always_true_collapses():
    assert simp("piecewise(7, true, 3)") == Number(7)


def test_zero_times_not_folded_away():
    # 0*expr is kept: expr could be NaN/inf where the identity fails.
    node = simp("0 * x")
    assert node.op == "times"


@pytest.mark.parametrize(
    "formula,env",
    [
        ("2 * x * 3 + 0", {"x": 1.7}),
        ("x ^ 1 + y / 1", {"x": 2.0, "y": 8.0}),
        ("exp(0 + x)", {"x": 0.3}),
        ("piecewise(x, x > 0, -x)", {"x": -2.0}),
        ("(a + 0) * (b * 1)", {"a": 3.0, "b": 4.0}),
        ("k1 * A - k2 * B", {"k1": 1.0, "A": 2.0, "k2": 3.0, "B": 4.0}),
    ],
)
def test_simplify_preserves_value(formula, env):
    node = parse_infix(formula)
    assert evaluate(simplify(node), env) == pytest.approx(
        evaluate(node, env)
    )


def test_simplify_widens_pattern_equality():
    from repro.mathml import math_equivalent

    a = simplify(parse_infix("k * 1 * A"))
    b = simplify(parse_infix("A * k"))
    assert math_equivalent(a, b)
