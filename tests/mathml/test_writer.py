"""Unit tests for the MathML writer (round trips with the parser)."""

import pytest

from repro.mathml import (
    Apply,
    Constant,
    Identifier,
    Lambda,
    Number,
    Piecewise,
    parse_infix,
    parse_mathml,
    write_mathml,
)


def round_trip(node):
    return parse_mathml(write_mathml(node))


@pytest.mark.parametrize(
    "node",
    [
        Number(4.0),
        Number(4.5),
        Number(-3.0),
        Number(6.022e23),
        Number(2.0, "per_second"),
        Identifier("S1"),
        Identifier("time"),
        Constant("pi"),
        Constant("true"),
        Apply("plus", (Identifier("a"), Identifier("b"), Number(1))),
        Apply("minus", (Identifier("x"),)),
        Apply("divide", (Identifier("a"), Identifier("b"))),
        Apply("power", (Identifier("x"), Number(2))),
        Apply("root", (Number(3), Identifier("x"))),
        Apply("log", (Number(2), Identifier("x"))),
        Apply("exp", (Identifier("x"),)),
        Apply("MM", (Identifier("S"), Identifier("Vmax"))),
        Lambda(("x", "y"), Apply("plus", (Identifier("x"), Identifier("y")))),
        Piecewise(
            ((Number(1), Apply("gt", (Identifier("x"), Number(0)))),),
            Number(0),
        ),
    ],
)
def test_round_trip(node):
    assert round_trip(node) == node


def test_round_trip_from_infix():
    for formula in [
        "k1 * A * B",
        "Vmax * S / (Km + S)",
        "exp(-k * time)",
        "piecewise(1, x >= 2, 0)",
        "a && b || !c",
    ]:
        node = parse_infix(formula)
        assert round_trip(node) == node


def test_writer_emits_namespace():
    text = write_mathml(Number(1))
    assert 'xmlns="http://www.w3.org/1998/Math/MathML"' in text


def test_integer_rendering():
    text = write_mathml(Number(7.0))
    assert 'type="integer"' in text
    assert ">7<" in text


def test_units_attribute_emitted():
    text = write_mathml(Number(2.0, "per_second"))
    assert 'units="per_second"' in text


def test_csymbol_time_round_trips():
    text = write_mathml(Identifier("time"))
    assert "csymbol" in text
    assert round_trip(Identifier("time")) == Identifier("time")


def test_indented_output_parses():
    node = parse_infix("k1 * A + k2 * B")
    pretty = write_mathml(node, indent="  ")
    assert "\n" in pretty
    assert parse_mathml(pretty) == node
