"""Unit tests for the fluent model builder."""

import pytest

from repro.errors import SBMLError
from repro.mathml import parse_infix, to_infix
from repro.sbml import ModelBuilder


def test_species_needs_compartment():
    with pytest.raises(SBMLError):
        ModelBuilder("m").species("A")


def test_first_compartment_is_default():
    model = (
        ModelBuilder("m")
        .compartment("cyto")
        .compartment("nucleus")
        .species("A")
        .species("B", compartment="nucleus")
        .build()
    )
    assert model.get_species("A").compartment == "cyto"
    assert model.get_species("B").compartment == "nucleus"


def test_species_amount_flag():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("X", 100.0, amount=True)
        .build()
    )
    species = model.get_species("X")
    assert species.initial_amount == 100.0
    assert species.initial_concentration is None
    assert species.has_only_substance_units


def test_mass_action_formula_first_order():
    # Paper Figure 10: A -k1-> B has kinetics k1*[A].
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .species("B")
        .parameter("k1", 1.0)
        .mass_action("r", ["A"], ["B"], "k1")
        .build()
    )
    law = model.get_reaction("r").kinetic_law
    assert law.math == parse_infix("k1 * A")


def test_mass_action_formula_second_order():
    # Paper Figure 11: A + B -k1-> C has kinetics k1*[A]*[B].
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .species("B")
        .species("C")
        .parameter("k1", 1.0)
        .mass_action("r", ["A", "B"], ["C"], "k1")
        .build()
    )
    assert model.get_reaction("r").kinetic_law.math == parse_infix("k1*A*B")


def test_mass_action_with_stoichiometry():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .species("B")
        .parameter("k", 1.0)
        .mass_action("r", [("A", 2)], ["B"], "k")
        .build()
    )
    reaction = model.get_reaction("r")
    assert reaction.reactants[0].stoichiometry == 2.0
    assert reaction.kinetic_law.math == parse_infix("k * A^2")


def test_reversible_mass_action():
    # Paper Figure 11: A <-> B has kinetics k1[A] - k2[B].
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .species("B")
        .parameter("k1", 1.0)
        .parameter("k2", 0.5)
        .reversible_mass_action("r", ["A"], ["B"], "k1", "k2")
        .build()
    )
    reaction = model.get_reaction("r")
    assert reaction.reversible
    assert reaction.kinetic_law.math == parse_infix("k1*A - k2*B")


def test_michaelis_menten_without_enzyme():
    # Paper Figure 12.
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("S")
        .species("P")
        .parameter("Vmax", 1.0)
        .parameter("Km", 0.5)
        .michaelis_menten("r", "S", "P", "Vmax", "Km")
        .build()
    )
    law = model.get_reaction("r").kinetic_law
    assert law.math == parse_infix("Vmax * S / (Km + S)")


def test_michaelis_menten_with_enzyme_modifier():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("S")
        .species("P")
        .species("E")
        .parameter("kcat", 1.0)
        .parameter("Km", 0.5)
        .michaelis_menten("r", "S", "P", "kcat", "Km", enzyme="E")
        .build()
    )
    reaction = model.get_reaction("r")
    assert [m.species for m in reaction.modifiers] == ["E"]
    assert reaction.kinetic_law.math == parse_infix(
        "kcat * E * S / (Km + S)"
    )


def test_local_parameters():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .reaction("r", ["A"], [], formula="k*A", local_parameters={"k": 3.0})
        .build()
    )
    law = model.get_reaction("r").kinetic_law
    assert law.parameters[0].id == "k"
    assert law.parameters[0].value == 3.0


def test_rules_and_assignments():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A", 1.0)
        .parameter("total", constant=False)
        .assignment_rule("total", "A * 2")
        .rate_rule("A", "-0.1 * A")
        .initial_assignment("A", "total / 2")
        .build()
    )
    assert len(model.rules) == 2
    assert model.initial_assignments[0].symbol == "A"


def test_event_construction():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A", 1.0)
        .event("dose", "time >= 10", {"A": "A + 5"}, delay="2")
        .build()
    )
    event = model.get_event("dose")
    assert event.trigger.math == parse_infix("time >= 10")
    assert event.delay.math == parse_infix("2")
    assert event.assignments[0].variable == "A"


def test_function_definition():
    model = (
        ModelBuilder("m")
        .function("MM", ["S", "Vmax", "Km"], "Vmax*S/(Km+S)")
        .build()
    )
    fd = model.get_function_definition("MM")
    assert fd.math.params == ("S", "Vmax", "Km")


def test_annotate_known_component():
    model_builder = (
        ModelBuilder("m")
        .compartment("c")
        .species("glc", 1.0)
        .annotate("glc", "is", "urn:miriam:chebi:17234")
    )
    model = model_builder.build()
    assert model.get_species("glc").annotations["is"] == [
        "urn:miriam:chebi:17234"
    ]


def test_annotate_unknown_component_rejected():
    with pytest.raises(SBMLError):
        ModelBuilder("m").annotate("ghost", "is", "urn:x")


def test_constraint_with_message():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A", 1.0)
        .constraint("A >= 0", message="A must stay non-negative")
        .build()
    )
    assert model.constraints[0].message == "A must stay non-negative"
