"""Unit tests for SBML component classes."""

from repro.mathml import Identifier, Lambda, parse_infix
from repro.sbml import (
    AssignmentRule,
    Compartment,
    Event,
    EventAssignment,
    FunctionDefinition,
    KineticLaw,
    ModifierSpeciesReference,
    Parameter,
    RateRule,
    Reaction,
    Species,
    SpeciesReference,
    Trigger,
)


def test_label_prefers_name():
    species = Species(id="s1", name="Glucose")
    assert species.label() == "Glucose"


def test_label_falls_back_to_id():
    assert Species(id="s1").label() == "s1"
    assert Species().label() == "<anonymous>"


def test_annotation_uris_flattened():
    species = Species(
        id="s1",
        annotations={
            "is": ["urn:miriam:chebi:17234"],
            "isVersionOf": ["urn:miriam:kegg:C00031"],
        },
    )
    assert set(species.annotation_uris()) == {
        "urn:miriam:chebi:17234",
        "urn:miriam:kegg:C00031",
    }


def test_species_initial_value_amount_wins():
    species = Species(id="s", initial_amount=5.0)
    assert species.initial_value() == 5.0
    species = Species(id="s", initial_concentration=2.0)
    assert species.initial_value() == 2.0
    assert Species(id="s").initial_value() is None


def test_species_copy_is_deep():
    original = Species(id="s", annotations={"is": ["u1"]})
    duplicate = original.copy()
    duplicate.annotations["is"].append("u2")
    assert original.annotations["is"] == ["u1"]


def test_assignment_rule_variable_roundtrip():
    rule = AssignmentRule(math=parse_infix("2 * x"))
    rule.variable = "y"
    assert rule.variable == "y"
    copied = rule.copy()
    assert copied.variable == "y"
    assert copied.math == rule.math


def test_rate_rule_variable():
    rule = RateRule(math=parse_infix("k"))
    rule.variable = "s"
    assert rule.copy().variable == "s"


def test_function_definition_copy():
    fd = FunctionDefinition(
        id="f", math=Lambda(("x",), Identifier("x"))
    )
    assert fd.copy().math == fd.math


def test_reaction_species_ids_role_order():
    reaction = Reaction(
        id="r",
        reactants=[SpeciesReference("A")],
        products=[SpeciesReference("B"), SpeciesReference("C")],
        modifiers=[ModifierSpeciesReference("E")],
    )
    assert reaction.species_ids() == ["A", "B", "C", "E"]


def test_reaction_edge_count_product_of_sides():
    reaction = Reaction(
        id="r",
        reactants=[SpeciesReference("A"), SpeciesReference("B")],
        products=[SpeciesReference("C"), SpeciesReference("D")],
    )
    assert reaction.edge_count() == 4


def test_reaction_edge_count_degenerate():
    synthesis = Reaction(id="r", products=[SpeciesReference("X")])
    assert synthesis.edge_count() == 1
    empty = Reaction(id="r")
    assert empty.edge_count() == 0


def test_reaction_copy_deep():
    reaction = Reaction(
        id="r",
        reactants=[SpeciesReference("A", 2.0)],
        kinetic_law=KineticLaw(
            math=parse_infix("k * A"),
            parameters=[Parameter(id="k", value=1.0)],
        ),
    )
    duplicate = reaction.copy()
    duplicate.reactants[0].stoichiometry = 3.0
    duplicate.kinetic_law.parameters[0].value = 9.0
    assert reaction.reactants[0].stoichiometry == 2.0
    assert reaction.kinetic_law.parameters[0].value == 1.0


def test_kinetic_law_local_parameter_ids():
    law = KineticLaw(parameters=[Parameter(id="k1"), Parameter(id="k2")])
    assert law.local_parameter_ids() == ["k1", "k2"]


def test_event_copy_deep():
    event = Event(
        id="e",
        trigger=Trigger(parse_infix("time > 5")),
        assignments=[EventAssignment("x", parse_infix("0"))],
    )
    duplicate = event.copy()
    duplicate.assignments[0].variable = "y"
    assert event.assignments[0].variable == "x"


def test_compartment_defaults():
    compartment = Compartment(id="cell")
    assert compartment.spatial_dimensions == 3
    assert compartment.constant
    assert compartment.copy().id == "cell"
