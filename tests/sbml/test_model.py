"""Unit tests for the Model container."""

import pytest

from repro.errors import SBMLError
from repro.mathml import Identifier, Lambda
from repro.sbml import (
    Compartment,
    FunctionDefinition,
    Model,
    ModelBuilder,
    Parameter,
    Reaction,
    Species,
    SpeciesReference,
)


def small_model():
    return (
        ModelBuilder("m")
        .compartment("cell")
        .species("A", 10.0)
        .species("B", 0.0)
        .parameter("k1", 0.5)
        .mass_action("r1", ["A"], ["B"], "k1")
        .build()
    )


def test_add_and_get():
    model = small_model()
    assert model.get_species("A").id == "A"
    assert model.get_parameter("k1").value == 0.5
    assert model.get_reaction("r1") is not None
    assert model.get_species("missing") is None


def test_duplicate_id_rejected():
    model = Model(id="m")
    model.add_compartment(Compartment(id="c"))
    model.add_species(Species(id="s", compartment="c"))
    with pytest.raises(SBMLError):
        model.add_species(Species(id="s", compartment="c"))


def test_duplicate_across_types_allowed_by_adders():
    # Cross-type collisions are a *validation* error, not an add error:
    # composition must be able to construct them to detect conflicts.
    model = Model(id="m")
    model.add_compartment(Compartment(id="x"))
    model.add_parameter(Parameter(id="x"))
    assert len(model.global_ids()) == 1  # last one wins in the table


def test_network_size_nodes_plus_edges():
    model = small_model()
    assert model.num_nodes() == 2
    assert model.num_edges() == 1
    assert model.network_size() == 3


def test_network_size_multi_edge_reaction():
    model = (
        ModelBuilder("m")
        .compartment("cell")
        .species("A")
        .species("B")
        .species("C")
        .parameter("k", 1.0)
        .mass_action("r", ["A", "B"], ["C"], "k")
        .build()
    )
    # A->C and B->C arrows
    assert model.num_edges() == 2
    assert model.network_size() == 5


def test_component_count_and_is_empty():
    assert Model(id="m").is_empty()
    model = small_model()
    assert not model.is_empty()
    assert model.component_count() == 5  # cell, A, B, k1, r1


def test_global_ids_excludes_local_parameters():
    model = (
        ModelBuilder("m")
        .compartment("cell")
        .species("A")
        .reaction(
            "r",
            ["A"],
            [],
            formula="klocal * A",
            local_parameters={"klocal": 2.0},
        )
        .build()
    )
    assert "klocal" not in model.global_ids()
    assert "r" in model.global_ids()


def test_function_table():
    model = Model(id="m")
    model.add_function_definition(
        FunctionDefinition(id="f", math=Lambda(("x",), Identifier("x")))
    )
    table = model.function_table()
    assert set(table) == {"f"}


def test_copy_is_deep():
    model = small_model()
    duplicate = model.copy()
    duplicate.get_species("A").initial_concentration = 99.0
    duplicate.get_reaction("r1").reactants[0].stoichiometry = 7.0
    assert model.get_species("A").initial_concentration == 10.0
    assert model.get_reaction("r1").reactants[0].stoichiometry == 1.0


def test_copy_preserves_counts():
    model = small_model()
    duplicate = model.copy()
    assert duplicate.component_count() == model.component_count()
    assert duplicate.network_size() == model.network_size()


def test_all_math_yields_every_expression():
    model = (
        ModelBuilder("m")
        .compartment("cell")
        .species("A", 1.0)
        .parameter("k", 2.0)
        .function("f", ["x"], "2 * x")
        .initial_assignment("A", "k * 3")
        .assignment_rule("k2", "k + 1")
        .parameter("k2", constant=False)
        .constraint("A > 0")
        .mass_action("r", ["A"], [], "k")
        .event("e", "A < 0.1", {"A": "1"})
        .build()
    )
    expressions = list(model.all_math())
    # function, initial assignment, rule, constraint, kinetic law,
    # trigger, event assignment
    assert len(expressions) == 7


def test_unit_registry_includes_model_definitions():
    model = (
        ModelBuilder("m")
        .unit("per_second", [("second", -1, 0, 1.0)])
        .build()
    )
    registry = model.unit_registry()
    assert registry.same_unit("per_second", "hertz")
