"""Round-trip and parsing tests for the SBML reader/writer."""

import pytest

from repro.errors import SBMLParseError
from repro.mathml import parse_infix
from repro.sbml import (
    Document,
    ModelBuilder,
    read_sbml,
    write_sbml,
)

EXAMPLE = """<?xml version="1.0" encoding="UTF-8"?>
<sbml xmlns="http://www.sbml.org/sbml/level2/version4" level="2" version="4">
  <model id="example" name="Example model">
    <listOfUnitDefinitions>
      <unitDefinition id="per_second">
        <listOfUnits>
          <unit kind="second" exponent="-1"/>
        </listOfUnits>
      </unitDefinition>
    </listOfUnitDefinitions>
    <listOfCompartments>
      <compartment id="cell" size="1.0"/>
    </listOfCompartments>
    <listOfSpecies>
      <species id="A" compartment="cell" initialConcentration="10.0"/>
      <species id="B" compartment="cell" initialConcentration="0.0"/>
    </listOfSpecies>
    <listOfParameters>
      <parameter id="k1" value="0.5" units="per_second"/>
    </listOfParameters>
    <listOfReactions>
      <reaction id="r1" reversible="false">
        <listOfReactants>
          <speciesReference species="A"/>
        </listOfReactants>
        <listOfProducts>
          <speciesReference species="B"/>
        </listOfProducts>
        <kineticLaw>
          <math xmlns="http://www.w3.org/1998/Math/MathML">
            <apply><times/><ci>k1</ci><ci>A</ci></apply>
          </math>
        </kineticLaw>
      </reaction>
    </listOfReactions>
  </model>
</sbml>
"""


def test_read_example_document():
    document = read_sbml(EXAMPLE)
    assert document.level == 2
    assert document.version == 4
    model = document.model
    assert model.id == "example"
    assert model.name == "Example model"
    assert len(model.species) == 2
    assert model.get_species("A").initial_concentration == 10.0
    assert model.get_parameter("k1").units == "per_second"
    reaction = model.get_reaction("r1")
    assert not reaction.reversible
    assert reaction.kinetic_law.math == parse_infix("k1 * A")


def test_read_unit_definition():
    model = read_sbml(EXAMPLE).model
    ud = model.get_unit_definition("per_second")
    assert ud.units[0].kind == "second"
    assert ud.units[0].exponent == -1


def full_featured_model():
    return (
        ModelBuilder("full", name="Full featured")
        .unit("per_second", [("second", -1, 0, 1.0)])
        .unit("uM", [("mole", 1, -6, 1.0), ("litre", -1, 0, 1.0)])
        .compartment_type("vessel")
        .species_type("protein")
        .compartment("cell", size=1.0, compartment_type="vessel")
        .compartment("nucleus", size=0.1, outside="cell")
        .species("A", 10.0, species_type="protein")
        .species("B", 0.0, name="Product B")
        .species("X", 50.0, amount=True, compartment="nucleus")
        .parameter("k1", 0.5, units="per_second")
        .parameter("total", constant=False)
        .function("double_it", ["x"], "2 * x")
        .initial_assignment("total", "A + B")
        .assignment_rule("total", "A + B")
        .rate_rule("X", "-0.01 * X")
        .constraint("A >= 0", message="no negative A")
        .mass_action("r1", ["A"], ["B"], "k1")
        .reversible_mass_action("r2", ["B"], [("A", 2)], "k1", "k1")
        .event("e1", "A < 1", {"A": "10"}, delay="1")
        .annotate("A", "is", "urn:miriam:chebi:17234")
        .build()
    )


def test_full_round_trip():
    original = full_featured_model()
    text = write_sbml(original)
    restored = read_sbml(text).model

    assert restored.id == original.id
    assert restored.name == original.name
    assert len(restored.unit_definitions) == len(original.unit_definitions)
    assert len(restored.compartments) == 2
    assert len(restored.species) == 3
    assert len(restored.rules) == 2
    assert len(restored.constraints) == 1
    assert len(restored.reactions) == 2
    assert len(restored.events) == 1

    # Math survives.
    assert restored.get_reaction("r1").kinetic_law.math == parse_infix(
        "k1 * A"
    )
    assert restored.get_function_definition("double_it").math.params == ("x",)

    # Attributes survive.
    species_x = restored.get_species("X")
    assert species_x.initial_amount == 50.0
    assert species_x.has_only_substance_units
    assert restored.get_compartment("nucleus").outside == "cell"
    assert not restored.get_parameter("total").constant

    # Annotations survive.
    assert restored.get_species("A").annotations["is"] == [
        "urn:miriam:chebi:17234"
    ]

    # Stoichiometry survives.
    r2 = restored.get_reaction("r2")
    assert r2.products[0].stoichiometry == 2.0
    assert r2.reversible


def test_round_trip_is_stable():
    # write(read(write(m))) == write(m): determinism for the diff tool.
    original = full_featured_model()
    once = write_sbml(original)
    twice = write_sbml(read_sbml(once).model)
    assert once == twice


def test_write_bare_model_wraps_in_document():
    model = ModelBuilder("m").compartment("c").build()
    text = write_sbml(model)
    assert 'level="2"' in text
    document = read_sbml(text)
    assert isinstance(document, Document)


def test_notes_round_trip():
    model = ModelBuilder("m").compartment("c").build()
    model.notes = "Composed by SBMLCompose"
    restored = read_sbml(write_sbml(model)).model
    assert restored.notes == "Composed by SBMLCompose"


def test_local_parameters_round_trip():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .reaction(
            "r", ["A"], [], formula="k * A", local_parameters={"k": 2.5}
        )
        .build()
    )
    restored = read_sbml(write_sbml(model)).model
    law = restored.get_reaction("r").kinetic_law
    assert law.parameters[0].id == "k"
    assert law.parameters[0].value == 2.5


def test_reject_non_sbml_root():
    with pytest.raises(SBMLParseError):
        read_sbml("<notsbml/>")


def test_reject_missing_model():
    with pytest.raises(SBMLParseError):
        read_sbml('<sbml xmlns="http://www.sbml.org/sbml/level2/version4"/>')


def test_reject_malformed_xml():
    with pytest.raises(SBMLParseError):
        read_sbml("<sbml><model id='x'>")


def test_reject_bad_number():
    bad = EXAMPLE.replace('size="1.0"', 'size="big"')
    with pytest.raises(SBMLParseError):
        read_sbml(bad)


def test_reject_bad_boolean():
    bad = EXAMPLE.replace('reversible="false"', 'reversible="maybe"')
    with pytest.raises(SBMLParseError):
        read_sbml(bad)


def test_reject_species_reference_without_species():
    bad = EXAMPLE.replace('species="A"/', "/")
    with pytest.raises(SBMLParseError):
        read_sbml(bad)


def test_reject_function_definition_without_lambda():
    text = """<sbml xmlns="http://www.sbml.org/sbml/level2/version4">
      <model id="m"><listOfFunctionDefinitions>
        <functionDefinition id="f">
          <math xmlns="http://www.w3.org/1998/Math/MathML"><cn>1</cn></math>
        </functionDefinition>
      </listOfFunctionDefinitions></model></sbml>"""
    with pytest.raises(SBMLParseError):
        read_sbml(text)


def test_file_round_trip(tmp_path):
    from repro.sbml import read_sbml_file, write_sbml_file

    model = full_featured_model()
    path = tmp_path / "model.xml"
    write_sbml_file(model, path)
    restored = read_sbml_file(path).model
    assert restored.id == model.id
    assert restored.component_count() == model.component_count()
