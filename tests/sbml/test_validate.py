"""Unit tests for SBML semantic validation."""

import pytest

from repro.errors import SBMLValidationError
from repro.mathml import Identifier, Lambda, Apply
from repro.sbml import (
    Compartment,
    FunctionDefinition,
    Model,
    ModelBuilder,
    Parameter,
    Species,
    assert_valid,
    validate_model,
)


def codes(model):
    return {issue.code for issue in validate_model(model)}


def valid_model():
    return (
        ModelBuilder("m")
        .compartment("cell")
        .species("A", 10.0)
        .species("B", 0.0)
        .parameter("k1", 0.5)
        .mass_action("r1", ["A"], ["B"], "k1")
        .build()
    )


def test_valid_model_has_no_issues():
    assert validate_model(valid_model()) == []
    assert_valid(valid_model())  # should not raise


def test_species_unknown_compartment():
    model = Model(id="m")
    model.add_species(Species(id="A", compartment="ghost"))
    assert "unknown-compartment" in codes(model)


def test_species_missing_compartment():
    model = Model(id="m")
    model.add_species(Species(id="A"))
    assert "missing-compartment" in codes(model)


def test_species_double_initial():
    model = Model(id="m")
    model.add_compartment(Compartment(id="c"))
    model.add_species(
        Species(
            id="A",
            compartment="c",
            initial_amount=1.0,
            initial_concentration=1.0,
        )
    )
    assert "double-initial" in codes(model)


def test_species_negative_initial():
    model = Model(id="m")
    model.add_compartment(Compartment(id="c"))
    model.add_species(
        Species(id="A", compartment="c", initial_concentration=-1.0)
    )
    assert "negative-initial" in codes(model)


def test_cross_type_duplicate_id():
    model = Model(id="m")
    model.add_compartment(Compartment(id="x"))
    model.add_parameter(Parameter(id="x"))
    assert "duplicate-id" in codes(model)


def test_unknown_units_on_parameter():
    model = valid_model()
    model.get_parameter("k1").units = "martian_seconds"
    assert "unknown-units" in codes(model)


def test_known_builtin_units_accepted():
    model = valid_model()
    model.get_parameter("k1").units = "second"
    assert "unknown-units" not in codes(model)
    model.get_parameter("k1").units = "substance"
    assert "unknown-units" not in codes(model)


def test_kinetic_law_unbound_identifier():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .reaction("r", ["A"], [], formula="mystery * A")
        .build()
    )
    assert "unbound-identifier" in codes(model)


def test_kinetic_law_local_parameter_binds():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .reaction("r", ["A"], [], formula="k*A", local_parameters={"k": 1.0})
        .build()
    )
    assert "unbound-identifier" not in codes(model)


def test_time_symbol_implicitly_bound():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .parameter("k", 1.0)
        .reaction("r", ["A"], [], formula="k * time")
        .build()
    )
    assert "unbound-identifier" not in codes(model)


def test_reaction_unknown_species():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .parameter("k", 1.0)
        .build()
    )
    from repro.sbml import Reaction, SpeciesReference

    model.add_reaction(
        Reaction(id="r", reactants=[SpeciesReference("ghost")])
    )
    assert "unknown-species" in codes(model)


def test_reaction_bad_stoichiometry():
    model = valid_model()
    model.get_reaction("r1").reactants[0].stoichiometry = 0.0
    assert "bad-stoichiometry" in codes(model)


def test_missing_kinetic_law_is_warning():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .species("B")
        .reaction("r", ["A"], ["B"])
        .build()
    )
    issues = validate_model(model)
    law_issues = [i for i in issues if i.code == "missing-kinetic-law"]
    assert law_issues and law_issues[0].severity == "warning"
    assert_valid(model)  # warnings don't raise


def test_rule_unknown_variable():
    model = ModelBuilder("m").compartment("c").assignment_rule("ghost", "1").build()
    assert "unknown-variable" in codes(model)


def test_rule_double_determined():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .parameter("p", constant=False)
        .assignment_rule("p", "1")
        .assignment_rule("p", "2")
        .build()
    )
    assert "double-determined" in codes(model)


def test_initial_assignment_unknown_symbol():
    model = ModelBuilder("m").initial_assignment("ghost", "1").build()
    assert "unknown-symbol" in codes(model)


def test_double_initial_assignment():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .initial_assignment("A", "1")
        .initial_assignment("A", "2")
        .build()
    )
    assert "double-initial-assignment" in codes(model)


def test_recursive_function_detected():
    model = Model(id="m")
    model.add_function_definition(
        FunctionDefinition(
            id="f",
            math=Lambda(("x",), Apply("f", (Identifier("x"),))),
        )
    )
    assert "recursive-function" in codes(model)


def test_mutually_recursive_functions_detected():
    model = Model(id="m")
    model.add_function_definition(
        FunctionDefinition(
            id="f", math=Lambda(("x",), Apply("g", (Identifier("x"),)))
        )
    )
    model.add_function_definition(
        FunctionDefinition(
            id="g", math=Lambda(("x",), Apply("f", (Identifier("x"),)))
        )
    )
    assert "recursive-function" in codes(model)


def test_function_with_free_identifier():
    model = Model(id="m")
    model.add_function_definition(
        FunctionDefinition(id="f", math=Lambda(("x",), Identifier("y")))
    )
    assert "unbound-in-function" in codes(model)


def test_unknown_function_call():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .reaction("r", ["A"], [], formula="nosuch(A)")
        .build()
    )
    assert "unknown-function" in codes(model)


def test_event_unknown_variable():
    model = (
        ModelBuilder("m")
        .compartment("c")
        .species("A")
        .event("e", "time > 1", {"ghost": "1"})
        .build()
    )
    assert "unknown-variable" in codes(model)


def test_assert_valid_raises_with_issues():
    model = Model(id="m")
    model.add_species(Species(id="A", compartment="ghost"))
    with pytest.raises(SBMLValidationError) as excinfo:
        assert_valid(model)
    assert excinfo.value.issues


def test_compartment_outside_unknown():
    model = Model(id="m")
    model.add_compartment(Compartment(id="inner", outside="ghost"))
    assert "unknown-outside" in codes(model)
