"""Unit tests for the Gillespie SSA simulator."""

import numpy as np
import pytest

from repro import ModelBuilder
from repro.errors import SimulationError
from repro.sim import GillespieSimulator, simulate_stochastic


def birth_death_model(birth=5.0, death=0.1, start=0.0):
    return (
        ModelBuilder("bd")
        .compartment("cell", size=1.0)
        .species("X", start, amount=True)
        .parameter("kb", birth)
        .parameter("kd", death)
        .reaction("birth", [], ["X"], formula="kb")
        .mass_action("death", ["X"], [], "kd")
        .build()
    )


def decay_model(k=0.5, start=1000.0):
    return (
        ModelBuilder("dec")
        .compartment("cell", size=1.0)
        .species("A", start, amount=True)
        .parameter("k", k)
        .mass_action("r", ["A"], [], "k")
        .build()
    )


class TestSSABasics:
    def test_deterministic_with_seed(self):
        model = decay_model()
        a = GillespieSimulator(model).run(2.0, np.random.default_rng(42))
        b = GillespieSimulator(model).run(2.0, np.random.default_rng(42))
        assert np.array_equal(a.column("A"), b.column("A"))

    def test_different_seeds_differ(self):
        model = decay_model()
        a = GillespieSimulator(model).run(2.0, np.random.default_rng(1))
        b = GillespieSimulator(model).run(2.0, np.random.default_rng(2))
        assert not np.array_equal(a.column("A"), b.column("A"))

    def test_counts_are_integers(self):
        trace = GillespieSimulator(decay_model()).run(
            1.0, np.random.default_rng(0)
        )
        values = trace.column("A")
        assert np.allclose(values, np.round(values))

    def test_decay_is_monotone_nonincreasing(self):
        trace = GillespieSimulator(decay_model()).run(
            5.0, np.random.default_rng(3)
        )
        diffs = np.diff(trace.column("A"))
        assert np.all(diffs <= 0)

    def test_absorbing_state_fills_tail(self):
        # All molecules decay; the trace must extend to t_end.
        trace = GillespieSimulator(decay_model(k=50.0, start=10.0)).run(
            10.0, np.random.default_rng(5)
        )
        assert trace.times[-1] == pytest.approx(10.0)
        assert trace.final()["A"] == 0.0

    def test_mean_decay_matches_ode(self):
        # Ensemble mean of the SSA tracks the deterministic solution.
        model = decay_model(k=1.0, start=500.0)
        traces = simulate_stochastic(model, t_end=1.0, runs=40, seed=7)
        finals = [t.final()["A"] for t in traces]
        expected = 500.0 * np.exp(-1.0)
        assert np.mean(finals) == pytest.approx(expected, rel=0.1)

    def test_birth_death_stationary_mean(self):
        # Birth-death stationary mean is kb/kd.
        model = birth_death_model(birth=5.0, death=0.1)
        traces = simulate_stochastic(model, t_end=100.0, runs=20, seed=11)
        finals = [t.final()["X"] for t in traces]
        assert np.mean(finals) == pytest.approx(50.0, rel=0.2)

    def test_boundary_species_not_consumed(self):
        model = (
            ModelBuilder("b")
            .compartment("cell", size=1.0)
            .species("S", 100.0, amount=True, boundary=True)
            .species("P", 0.0, amount=True)
            .parameter("k", 0.5)
            .mass_action("r", ["S"], ["P"], "k")
            .build()
        )
        trace = GillespieSimulator(model).run(2.0, np.random.default_rng(1))
        assert np.all(trace.column("S") == 100.0)
        assert trace.final()["P"] > 0


class TestSSAValidation:
    def test_no_reactions_rejected(self):
        model = (
            ModelBuilder("empty")
            .compartment("cell", size=1.0)
            .species("A", 1.0, amount=True)
            .build()
        )
        with pytest.raises(SimulationError):
            GillespieSimulator(model)

    def test_negative_t_end_rejected(self):
        with pytest.raises(SimulationError):
            GillespieSimulator(decay_model()).run(-1.0)

    def test_max_events_guard(self):
        model = birth_death_model(birth=1e6, death=0.0)
        with pytest.raises(SimulationError):
            GillespieSimulator(model).run(
                10.0, np.random.default_rng(0), max_events=100
            )

    def test_run_many_deterministic_sequence(self):
        model = decay_model()
        first = GillespieSimulator(model).run_many(3, 1.0, seed=9)
        second = GillespieSimulator(model).run_many(3, 1.0, seed=9)
        for a, b in zip(first, second):
            assert np.array_equal(a.column("A"), b.column("A"))
