"""Unit tests for the RK4 and RKF45 integrators."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import rk4, rkf45


def exponential_decay(t, y):
    return -y


def test_rk4_exponential_decay():
    times, states = rk4(exponential_decay, np.array([1.0]), 0.0, 5.0, 500)
    assert states[-1, 0] == pytest.approx(math.exp(-5.0), rel=1e-6)


def test_rk4_sample_count():
    times, states = rk4(exponential_decay, np.array([1.0]), 0.0, 1.0, 10)
    assert len(times) == 11
    assert states.shape == (11, 1)


def test_rk4_fourth_order_convergence():
    # Halving the step size should cut the error by about 2^4.
    exact = math.exp(-1.0)
    _, coarse = rk4(exponential_decay, np.array([1.0]), 0.0, 1.0, 10)
    _, fine = rk4(exponential_decay, np.array([1.0]), 0.0, 1.0, 20)
    error_coarse = abs(coarse[-1, 0] - exact)
    error_fine = abs(fine[-1, 0] - exact)
    assert error_coarse / error_fine > 8.0


def test_rk4_harmonic_oscillator_energy():
    def oscillator(t, y):
        return np.array([y[1], -y[0]])

    _, states = rk4(oscillator, np.array([1.0, 0.0]), 0.0, 2 * math.pi, 1000)
    # One full period returns to the start.
    assert states[-1, 0] == pytest.approx(1.0, abs=1e-6)
    assert states[-1, 1] == pytest.approx(0.0, abs=1e-6)


def test_rk4_rejects_bad_args():
    with pytest.raises(SimulationError):
        rk4(exponential_decay, np.array([1.0]), 0.0, 1.0, 0)
    with pytest.raises(SimulationError):
        rk4(exponential_decay, np.array([1.0]), 1.0, 1.0, 10)


def test_rk4_detects_divergence():
    def blow_up(t, y):
        with np.errstate(over="ignore", invalid="ignore"):
            return y * y * 1e6

    with pytest.raises(SimulationError):
        rk4(blow_up, np.array([1.0]), 0.0, 10.0, 10)


def test_rkf45_exponential_decay():
    times, states = rkf45(
        exponential_decay, np.array([1.0]), 0.0, 5.0, rtol=1e-8
    )
    assert states[-1, 0] == pytest.approx(math.exp(-5.0), rel=1e-6)


def test_rkf45_endpoints_included():
    times, _ = rkf45(exponential_decay, np.array([1.0]), 0.0, 2.0)
    assert times[0] == 0.0
    assert times[-1] == pytest.approx(2.0)


def test_rkf45_adapts_step_size():
    # A stiff-ish pulse forces small steps near t=5.
    def pulse(t, y):
        return np.array([-((t - 5.0) ** 2) * 50.0 * y[0]])

    times, _ = rkf45(pulse, np.array([1.0]), 0.0, 10.0, rtol=1e-6)
    gaps = np.diff(times)
    assert gaps.min() < gaps.max() / 2  # non-uniform steps


def test_rkf45_tight_tolerance_more_steps():
    _, loose = rkf45(exponential_decay, np.array([1.0]), 0.0, 1.0, rtol=1e-3)
    _, tight = rkf45(exponential_decay, np.array([1.0]), 0.0, 1.0, rtol=1e-10)
    assert len(tight) >= len(loose)


def test_rkf45_rejects_empty_span():
    with pytest.raises(SimulationError):
        rkf45(exponential_decay, np.array([1.0]), 2.0, 1.0)


def test_rkf45_two_dimensional():
    def linear(t, y):
        return np.array([y[1], -y[0]])

    _, states = rkf45(linear, np.array([0.0, 1.0]), 0.0, math.pi, rtol=1e-9)
    assert states[-1, 0] == pytest.approx(0.0, abs=1e-6)
    assert states[-1, 1] == pytest.approx(-1.0, abs=1e-6)
