"""Unit tests for the ODE simulator."""

import math

import numpy as np
import pytest

from repro import ModelBuilder
from repro.errors import SimulationError
from repro.sim import OdeSimulator, simulate


def decay_model(k=0.5):
    return (
        ModelBuilder("decay")
        .compartment("cell", size=1.0)
        .species("A", 10.0)
        .parameter("k", k)
        .mass_action("r", ["A"], [], "k")
        .build()
    )


class TestBasicKinetics:
    def test_first_order_decay_analytic(self):
        # dA/dt = -k A  =>  A(t) = A0 exp(-kt)
        trace = simulate(decay_model(0.5), t_end=4.0, steps=400)
        expected = 10.0 * math.exp(-0.5 * 4.0)
        assert trace.final()["A"] == pytest.approx(expected, rel=1e-4)

    def test_conversion_conserves_mass(self):
        model = (
            ModelBuilder("conv")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .parameter("k", 1.0)
            .mass_action("r", ["A"], ["B"], "k")
            .build()
        )
        trace = simulate(model, t_end=3.0, steps=300)
        total = trace.column("A") + trace.column("B")
        assert np.allclose(total, 10.0, rtol=1e-6)

    def test_reversible_reaches_equilibrium(self):
        # A <-> B with k1=2, k2=1: equilibrium at B/A = 2.
        model = (
            ModelBuilder("rev")
            .compartment("cell", size=1.0)
            .species("A", 9.0)
            .species("B", 0.0)
            .parameter("k1", 2.0)
            .parameter("k2", 1.0)
            .reversible_mass_action("r", ["A"], ["B"], "k1", "k2")
            .build()
        )
        final = simulate(model, t_end=20.0, steps=2000).final()
        assert final["B"] / final["A"] == pytest.approx(2.0, rel=1e-3)

    def test_michaelis_menten_half_vmax_at_km(self):
        # Paper Fig 12: at [A] = KM the velocity is Vmax/2.
        model = (
            ModelBuilder("mm")
            .compartment("cell", size=1.0)
            .species("S", 2.0)
            .species("P", 0.0)
            .parameter("Vmax", 1.0)
            .parameter("Km", 2.0)
            .michaelis_menten("r", "S", "P", "Vmax", "Km")
            .build()
        )
        simulator = OdeSimulator(model)
        env = simulator.initial_environment()
        y = np.array([env[name] for name in simulator.state_ids])
        dydt = simulator.derivatives(0.0, y, env)
        p_index = simulator.state_ids.index("P")
        assert dydt[p_index] == pytest.approx(0.5)

    def test_second_order_kinetics(self):
        model = (
            ModelBuilder("bi")
            .compartment("cell", size=1.0)
            .species("A", 2.0)
            .species("B", 3.0)
            .species("C", 0.0)
            .parameter("k", 0.25)
            .mass_action("r", ["A", "B"], ["C"], "k")
            .build()
        )
        simulator = OdeSimulator(model)
        env = simulator.initial_environment()
        y = np.array([env[name] for name in simulator.state_ids])
        dydt = simulator.derivatives(0.0, y, env)
        c_index = simulator.state_ids.index("C")
        assert dydt[c_index] == pytest.approx(0.25 * 2.0 * 3.0)


class TestRulesAndAssignments:
    def test_rate_rule_drives_parameter(self):
        model = (
            ModelBuilder("rr")
            .compartment("cell", size=1.0)
            .parameter("p", 0.0, constant=False)
            .rate_rule("p", "2")
            .build()
        )
        trace = simulate(model, t_end=5.0, steps=100, record=["p"])
        assert trace.final()["p"] == pytest.approx(10.0, rel=1e-9)

    def test_assignment_rule_tracks_state(self):
        model = (
            ModelBuilder("ar")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .parameter("k", 0.5)
            .parameter("double_A", constant=False)
            .assignment_rule("double_A", "2 * A")
            .mass_action("r", ["A"], [], "k")
            .build()
        )
        trace = simulate(model, 2.0, 200, record=["A", "double_A"])
        assert np.allclose(
            trace.column("double_A"), 2 * trace.column("A"), rtol=1e-9
        )

    def test_initial_assignment_overrides_declared(self):
        model = (
            ModelBuilder("ia")
            .compartment("cell", size=1.0)
            .species("A", 1.0)
            .parameter("k", 0.0)
            .initial_assignment("A", "21 * 2")
            .build()
        )
        trace = simulate(model, 1.0, 10)
        assert trace.column("A")[0] == pytest.approx(42.0)

    def test_boundary_species_stays_fixed(self):
        model = (
            ModelBuilder("bd")
            .compartment("cell", size=1.0)
            .species("S", 5.0, boundary=True)
            .species("P", 0.0)
            .parameter("k", 1.0)
            .mass_action("r", ["S"], ["P"], "k")
            .build()
        )
        trace = simulate(model, 1.0, 100)
        assert np.allclose(trace.column("S"), 5.0)
        assert trace.final()["P"] == pytest.approx(5.0, rel=1e-6)


class TestEvents:
    def test_event_fires_on_threshold(self):
        model = (
            ModelBuilder("ev")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .parameter("k", 1.0)
            .mass_action("r", ["A"], [], "k")
            .event("refill", "A < 5", {"A": "10"})
            .build()
        )
        trace = simulate(model, 3.0, 3000)
        # A decays towards 5, is reset to 10, so it never drops much
        # below the threshold.
        assert trace.column("A").min() > 4.5

    def test_event_with_delay(self):
        model = (
            ModelBuilder("evd")
            .compartment("cell", size=1.0)
            .species("A", 0.0, boundary=True)
            .parameter("unused", 0.0)
            .event("dose", "time >= 1", {"A": "7"}, delay="2")
            .build()
        )
        trace = simulate(model, 5.0, 500)
        # Fires at t=1, applies at t=3.
        assert trace.at(2.0)["A"] == pytest.approx(0.0)
        assert trace.at(4.0)["A"] == pytest.approx(7.0)

    def test_event_fires_once_per_rising_edge(self):
        model = (
            ModelBuilder("edge")
            .compartment("cell", size=1.0)
            .species("A", 0.0, boundary=True)
            .event("inc", "time >= 1", {"A": "A + 1"})
            .build()
        )
        trace = simulate(model, 5.0, 500)
        assert trace.final()["A"] == pytest.approx(1.0)


class TestConcentrationVsAmount:
    def test_concentration_divided_by_volume(self):
        # Same reaction in a 2-litre compartment: concentration change
        # is half the substance change.
        model = (
            ModelBuilder("vol")
            .compartment("cell", size=2.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("k", 1.0)
            .reaction("r", ["A"], ["B"], formula="k")  # constant flux
            .build()
        )
        simulator = OdeSimulator(model)
        env = simulator.initial_environment()
        y = np.array([env[name] for name in simulator.state_ids])
        dydt = simulator.derivatives(0.0, y, env)
        b_index = simulator.state_ids.index("B")
        assert dydt[b_index] == pytest.approx(0.5)  # 1 substance / 2 l

    def test_amount_species_not_divided(self):
        model = (
            ModelBuilder("amt")
            .compartment("cell", size=2.0)
            .species("A", 1.0, amount=True)
            .species("B", 0.0, amount=True)
            .parameter("k", 1.0)
            .reaction("r", ["A"], ["B"], formula="k")
            .build()
        )
        simulator = OdeSimulator(model)
        env = simulator.initial_environment()
        y = np.array([env[name] for name in simulator.state_ids])
        dydt = simulator.derivatives(0.0, y, env)
        b_index = simulator.state_ids.index("B")
        assert dydt[b_index] == pytest.approx(1.0)


class TestLocalParameters:
    def test_local_parameter_shadows_global(self):
        model = (
            ModelBuilder("loc")
            .compartment("cell", size=1.0)
            .species("A", 10.0)
            .parameter("k", 100.0)  # global decoy
            .reaction("r", ["A"], [], formula="k*A", local_parameters={"k": 0.5})
            .build()
        )
        trace = simulate(model, 1.0, 100)
        expected = 10.0 * math.exp(-0.5)
        assert trace.final()["A"] == pytest.approx(expected, rel=1e-4)


class TestErrors:
    def test_negative_t_end_rejected(self):
        with pytest.raises(SimulationError):
            simulate(decay_model(), -1.0)

    def test_unbound_identifier_fails(self):
        model = (
            ModelBuilder("bad")
            .compartment("cell", size=1.0)
            .species("A", 1.0)
            .reaction("r", ["A"], [], formula="ghost * A")
            .build()
        )
        with pytest.raises(SimulationError):
            simulate(model, 1.0, 10)
