"""Unit tests for Trace."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Trace


@pytest.fixture
def trace():
    times = np.linspace(0, 10, 11)
    return Trace(times, {"A": times * 2, "B": 10 - times})


def test_len_and_contains(trace):
    assert len(trace) == 11
    assert "A" in trace
    assert "Z" not in trace


def test_species_sorted(trace):
    assert trace.species == ["A", "B"]


def test_column_lookup(trace):
    assert trace.column("A")[5] == 10.0
    with pytest.raises(SimulationError):
        trace.column("missing")


def test_mismatched_lengths_rejected():
    with pytest.raises(SimulationError):
        Trace([0, 1, 2], {"A": [1, 2]})


def test_at_interpolates(trace):
    state = trace.at(2.5)
    assert state["A"] == pytest.approx(5.0)
    assert state["B"] == pytest.approx(7.5)


def test_final(trace):
    assert trace.final() == {"A": 20.0, "B": 0.0}


def test_slice_columns(trace):
    only_a = trace.slice_columns(["A"])
    assert only_a.species == ["A"]
    assert len(only_a) == len(trace)


def test_resample(trace):
    resampled = trace.resample([0.0, 5.0, 10.0])
    assert len(resampled) == 3
    assert resampled.column("A")[1] == pytest.approx(10.0)


def test_to_rows_order(trace):
    rows = trace.to_rows()
    assert rows[0] == [0.0, 0.0, 10.0]  # time, A, B
    assert len(rows) == 11


def test_csv_round_trip(tmp_path, trace):
    path = tmp_path / "trace.csv"
    trace.write_csv(path)
    restored = Trace.read_csv(path)
    assert restored.species == trace.species
    assert np.allclose(restored.times, trace.times)
    assert np.allclose(restored.column("A"), trace.column("A"))


def test_read_csv_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("t,A\n0,1\n")
    with pytest.raises(SimulationError):
        Trace.read_csv(path)


def test_read_csv_rejects_empty(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("time,A\n")
    with pytest.raises(SimulationError):
        Trace.read_csv(path)


def test_sparkline_shape(trace):
    line = trace.sparkline("A", width=20)
    assert len(line) <= 20
    assert line[0] != line[-1]  # rising series


def test_sparkline_constant_series():
    flat = Trace([0, 1, 2], {"A": [3, 3, 3]})
    line = flat.sparkline("A")
    assert len(set(line)) == 1
