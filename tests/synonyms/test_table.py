"""Unit tests for synonym tables and name normalisation."""

from repro.synonyms import SynonymTable, builtin_synonyms, normalize_name


class TestNormalizeName:
    def test_case_insensitive(self):
        assert normalize_name("ATP") == normalize_name("atp")

    def test_whitespace_stripped(self):
        assert normalize_name("adenosine  triphosphate") == (
            normalize_name("adenosinetriphosphate")
        )

    def test_punctuation_stripped(self):
        assert normalize_name("glucose-6-phosphate") == (
            normalize_name("glucose 6 phosphate")
        )

    def test_greek_letters_folded(self):
        assert normalize_name("α-ketoglutarate") == (
            normalize_name("alpha ketoglutarate")
        )

    def test_brackets_stripped(self):
        assert normalize_name("Ca(2+)") == normalize_name("ca2+")


class TestSynonymTable:
    def test_equal_names_always_synonymous(self):
        table = SynonymTable()
        assert table.are_synonyms("X", "X")
        assert table.are_synonyms("X", "x")

    def test_unrelated_names_not_synonymous(self):
        table = SynonymTable()
        assert not table.are_synonyms("ATP", "GTP")

    def test_ring_members_synonymous(self):
        table = SynonymTable([["ATP", "adenosine triphosphate"]])
        assert table.are_synonyms("ATP", "Adenosine Triphosphate")
        assert table.are_synonyms("adenosine triphosphate", "atp")

    def test_transitive_merge_of_rings(self):
        table = SynonymTable()
        table.add_ring(["A", "B"])
        table.add_ring(["B", "C"])
        assert table.are_synonyms("A", "C")

    def test_merge_three_rings(self):
        table = SynonymTable()
        table.add_ring(["A", "B"])
        table.add_ring(["C", "D"])
        table.add_ring(["B", "C"])
        assert table.are_synonyms("A", "D")

    def test_add_synonym_pairwise(self):
        table = SynonymTable()
        table.add_synonym("glc", "glucose")
        assert table.are_synonyms("GLC", "Glucose")

    def test_canonical_deterministic(self):
        table = SynonymTable([["zeta", "alpha", "mid"]])
        assert table.canonical("zeta") == table.canonical("mid") == "alpha"

    def test_canonical_without_ring_is_normalized_self(self):
        table = SynonymTable()
        assert table.canonical("My Name") == "myname"

    def test_synonyms_of(self):
        table = SynonymTable([["a", "b"]])
        assert table.synonyms_of("A") == {"a", "b"}
        assert table.synonyms_of("solo") == {"solo"}

    def test_empty_ring_ignored(self):
        table = SynonymTable()
        table.add_ring([])
        table.add_ring(["", "  "])
        assert len(table) == 0

    def test_tsv_round_trip(self, tmp_path):
        table = SynonymTable([["ATP", "adenosine triphosphate"], ["a", "b"]])
        path = tmp_path / "synonyms.tsv"
        table.to_tsv(path)
        restored = SynonymTable.from_tsv(path)
        assert restored.are_synonyms("ATP", "adenosine triphosphate")
        assert restored.are_synonyms("a", "b")
        assert not restored.are_synonyms("ATP", "a")

    def test_tsv_skips_comments(self, tmp_path):
        path = tmp_path / "synonyms.tsv"
        path.write_text("# comment\nfoo\tbar\n\n")
        table = SynonymTable.from_tsv(path)
        assert table.are_synonyms("foo", "bar")


class TestBuiltinTable:
    def test_currency_metabolites(self):
        table = builtin_synonyms()
        assert table.are_synonyms("ATP", "adenosine triphosphate")
        assert table.are_synonyms("NAD+", "NAD")

    def test_glycolysis_names(self):
        table = builtin_synonyms()
        assert table.are_synonyms("glucose", "D-glucose")
        assert table.are_synonyms("G6P", "glucose-6-phosphate")

    def test_compartments(self):
        table = builtin_synonyms()
        assert table.are_synonyms("cytosol", "cytoplasm")
        assert table.are_synonyms("mitochondrion", "mitochondria")

    def test_signalling(self):
        table = builtin_synonyms()
        assert table.are_synonyms("MAPKK", "MEK")
        assert table.are_synonyms("Ca2+", "calcium")

    def test_distinct_entities_stay_distinct(self):
        table = builtin_synonyms()
        assert not table.are_synonyms("ATP", "ADP")
        assert not table.are_synonyms("NAD", "NADH")
        assert not table.are_synonyms("glucose", "pyruvate")

    def test_fresh_instance_each_call(self):
        first = builtin_synonyms()
        first.add_synonym("ATP", "XYZ_custom")
        second = builtin_synonyms()
        assert not second.are_synonyms("ATP", "XYZ_custom")
