"""Unit tests for the sbmlcompose CLI."""

import pytest

from repro import ModelBuilder, write_sbml_file
from repro.cli import main


@pytest.fixture
def model_files(tmp_path):
    a = (
        ModelBuilder("a")
        .compartment("cell", size=1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .parameter("k1", 0.5)
        .mass_action("r1", ["A"], ["B"], "k1")
        .build()
    )
    b = (
        ModelBuilder("b")
        .compartment("cell", size=1.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k2", 0.3)
        .mass_action("r2", ["B"], ["C"], "k2")
        .build()
    )
    path_a = tmp_path / "a.xml"
    path_b = tmp_path / "b.xml"
    write_sbml_file(a, path_a)
    write_sbml_file(b, path_b)
    return path_a, path_b


def test_merge_to_file(model_files, tmp_path, capsys):
    path_a, path_b = model_files
    out = tmp_path / "merged.xml"
    code = main(["merge", str(path_a), str(path_b), "-o", str(out)])
    assert code == 0
    assert out.exists()
    text = out.read_text()
    assert "<species" in text and 'id="C"' in text


def test_merge_writes_log(model_files, tmp_path):
    path_a, path_b = model_files
    out = tmp_path / "merged.xml"
    log = tmp_path / "merge.log"
    code = main(
        ["merge", str(path_a), str(path_b), "-o", str(out), "--log", str(log)]
    )
    assert code == 0
    assert "DUPLICATE" in log.read_text()


def test_merge_to_stdout(model_files, capsys):
    path_a, path_b = model_files
    assert main(["merge", str(path_a), str(path_b)]) == 0
    captured = capsys.readouterr()
    assert "<sbml" in captured.out
    assert "duplicate" in captured.err


def test_merge_semantics_flag(model_files, tmp_path):
    path_a, path_b = model_files
    out = tmp_path / "m.xml"
    assert main(
        ["merge", str(path_a), str(path_b), "-o", str(out),
         "--semantics", "none"]
    ) == 0
    # No matching: B from the second model is renamed, so 4 species.
    assert out.read_text().count("<species ") == 4


def test_diff_identical(model_files, capsys):
    path_a, _ = model_files
    assert main(["diff", str(path_a), str(path_a)]) == 0
    assert "equivalent" in capsys.readouterr().out


@pytest.fixture
def three_model_files(model_files, tmp_path):
    path_a, path_b = model_files
    c = (
        ModelBuilder("c")
        .compartment("cell", size=1.0)
        .species("C", 0.0)
        .species("D", 0.0)
        .parameter("k3", 0.1)
        .mass_action("r3", ["C"], ["D"], "k3")
        .build()
    )
    path_c = tmp_path / "c.xml"
    write_sbml_file(c, path_c)
    return path_a, path_b, path_c


def test_merge_three_models_with_tree_plan(three_model_files, tmp_path, capsys):
    path_a, path_b, path_c = three_model_files
    out = tmp_path / "merged3.xml"
    log = tmp_path / "merge3.log"
    code = main(
        ["merge", str(path_a), str(path_b), str(path_c),
         "-o", str(out), "--plan", "tree", "--log", str(log)]
    )
    assert code == 0
    text = out.read_text()
    for species_id in ("A", "B", "C", "D"):
        assert f'id="{species_id}"' in text
    # Per-step provenance is logged: step summaries on stderr, STEP +
    # PROVENANCE records in the log file.
    err = capsys.readouterr().err
    assert "step 1:" in err and "step 2:" in err
    log_text = log.read_text()
    assert "STEP 1:" in log_text
    assert "PROVENANCE" in log_text
    assert "PROVENANCE D <- c:D" in log_text


def test_merge_parallel_tree_matches_serial(three_model_files, tmp_path):
    path_a, path_b, path_c = three_model_files
    serial_out = tmp_path / "serial.xml"
    parallel_out = tmp_path / "parallel.xml"
    assert main(
        ["merge", str(path_a), str(path_b), str(path_c),
         "-o", str(serial_out), "--plan", "tree"]
    ) == 0
    assert main(
        ["merge", str(path_a), str(path_b), str(path_c),
         "-o", str(parallel_out), "--plan", "tree", "--workers", "4"]
    ) == 0
    assert parallel_out.read_text() == serial_out.read_text()


def test_sweep_to_terminal(three_model_files, capsys):
    path_a, path_b, path_c = three_model_files
    code = main(["sweep", str(path_a), str(path_b), str(path_c)])
    assert code == 0
    captured = capsys.readouterr()
    assert "a+b" in captured.out
    assert "pairs/s" in captured.err
    # 3 models with self-pairs -> 6 rows (+ header).
    assert len(captured.out.strip().splitlines()) == 7


def test_sweep_to_csv_no_self(three_model_files, tmp_path, capsys):
    path_a, path_b, path_c = three_model_files
    out = tmp_path / "pairs.csv"
    code = main(
        ["sweep", str(path_a), str(path_b), str(path_c),
         "--no-self", "--workers", "2", "-o", str(out)]
    )
    assert code == 0
    lines = out.read_text().strip().splitlines()
    assert lines[0].startswith("i,j,left,right,combined_size")
    assert len(lines) == 4  # header + C(3,2) pairs
    assert "3 pairs" in capsys.readouterr().err


def test_sweep_single_model_rejected(model_files, capsys):
    path_a, _ = model_files
    code = main(["sweep", str(path_a)])
    assert code == 2
    assert "at least two" in capsys.readouterr().err


def test_sweep_fresh_indexes_byte_identical(three_model_files, tmp_path, capsys):
    """--fresh-indexes is an ablation knob, never a semantic one: the
    deterministic CSV must match the prebuilt-index default byte for
    byte (the conformance matrix's seventh path, on the CLI)."""
    path_a, path_b, path_c = three_model_files
    prebuilt = tmp_path / "prebuilt.csv"
    fresh = tmp_path / "fresh.csv"
    assert main(
        ["sweep", str(path_a), str(path_b), str(path_c),
         "--deterministic", "-o", str(prebuilt)]
    ) == 0
    assert main(
        ["sweep", str(path_a), str(path_b), str(path_c),
         "--deterministic", "--fresh-indexes", "-o", str(fresh)]
    ) == 0
    capsys.readouterr()
    assert prebuilt.read_bytes() == fresh.read_bytes()


@pytest.mark.parametrize("plan", ["fold", "tree", "greedy"])
def test_merge_plans_agree(three_model_files, tmp_path, plan):
    path_a, path_b, path_c = three_model_files
    out = tmp_path / f"merged_{plan}.xml"
    code = main(
        ["merge", str(path_a), str(path_b), str(path_c),
         "-o", str(out), "--plan", plan]
    )
    assert code == 0
    assert out.read_text().count("<species ") == 4


def test_merge_single_model_rejected(model_files, capsys):
    path_a, _ = model_files
    assert main(["merge", str(path_a)]) == 2
    assert "at least two" in capsys.readouterr().err


def test_diff_different(model_files, capsys):
    path_a, path_b = model_files
    assert main(["diff", str(path_a), str(path_b)]) == 1
    out = capsys.readouterr().out
    assert "MISSING" in out or "EXTRA" in out


def test_validate_ok(model_files, capsys):
    path_a, _ = model_files
    assert main(["validate", str(path_a)]) == 0
    assert "valid" in capsys.readouterr().out


def test_validate_bad_model(tmp_path, capsys):
    from repro.sbml import Model, Species

    model = Model(id="bad")
    model.add_species(Species(id="X", compartment="ghost"))
    path = tmp_path / "bad.xml"
    write_sbml_file(model, path)
    assert main(["validate", str(path)]) == 1


def test_simulate_to_csv(model_files, tmp_path):
    path_a, _ = model_files
    out = tmp_path / "trace.csv"
    code = main(
        ["simulate", str(path_a), "--t-end", "2", "--steps", "50",
         "-o", str(out)]
    )
    assert code == 0
    header = out.read_text().splitlines()[0]
    assert header.startswith("time,")


def test_simulate_to_terminal(model_files, capsys):
    path_a, _ = model_files
    assert main(["simulate", str(path_a), "--t-end", "1"]) == 0
    out = capsys.readouterr().out
    assert "final:" in out


def test_split(tmp_path, monkeypatch, capsys):
    model = (
        ModelBuilder("two")
        .compartment("cell", size=1.0)
        .species("A", 1.0).species("B", 0.0)
        .species("X", 1.0).species("Y", 0.0)
        .parameter("k1", 1.0).parameter("k2", 1.0)
        .mass_action("ab", ["A"], ["B"], "k1")
        .mass_action("xy", ["X"], ["Y"], "k2")
        .build()
    )
    path = tmp_path / "two.xml"
    write_sbml_file(model, path)
    monkeypatch.chdir(tmp_path)
    assert main(["split", str(path), "--out-prefix", "piece"]) == 0
    assert (tmp_path / "piece0.xml").exists()
    assert (tmp_path / "piece1.xml").exists()


def test_missing_file_error(capsys):
    assert main(["validate", "/nonexistent/model.xml"]) == 2
    assert "error" in capsys.readouterr().err


def test_strict_merge_conflict(tmp_path):
    a = (
        ModelBuilder("a").compartment("cell", size=1.0)
        .species("X", 1.0).build()
    )
    b = (
        ModelBuilder("b").compartment("cell", size=1.0)
        .species("X", 2.0).build()
    )
    pa, pb = tmp_path / "a.xml", tmp_path / "b.xml"
    write_sbml_file(a, pa)
    write_sbml_file(b, pb)
    assert main(["merge", str(pa), str(pb), "--strict"]) == 2


def test_sweep_status_progression(three_model_files, tmp_path, capsys):
    """sweep-status reads the journal only: partial sweep → exit 1
    with pending shards listed, complete sweep → exit 0."""
    path_a, path_b, path_c = three_model_files
    out_dir = tmp_path / "sweepdir"
    assert main([
        "sweep", str(path_a), str(path_b), str(path_c),
        "--shards", "2", "--shard-id", "0", "--out-dir", str(out_dir),
    ]) == 0
    capsys.readouterr()

    assert main(["sweep-status", "--out-dir", str(out_dir)]) == 1
    out = capsys.readouterr().out
    assert "1/2 shard(s) complete" in out
    assert "shard 0: complete" in out
    assert "shard 1: pending" in out

    assert main([
        "sweep", str(path_a), str(path_b), str(path_c),
        "--shards", "2", "--shard-id", "1", "--out-dir", str(out_dir),
    ]) == 0
    capsys.readouterr()

    assert main(["sweep-status", "--out-dir", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "2/2 shard(s) complete" in out
    assert "pending" not in out


def test_sweep_status_does_not_touch_journal(three_model_files, tmp_path, capsys):
    path_a, path_b, path_c = three_model_files
    out_dir = tmp_path / "sweepdir"
    assert main([
        "sweep", str(path_a), str(path_b), str(path_c),
        "--shards", "2", "--out-dir", str(out_dir),
    ]) == 0
    journal = (out_dir / "checkpoint.json").read_bytes()
    assert main(["sweep-status", "--out-dir", str(out_dir)]) == 0
    assert (out_dir / "checkpoint.json").read_bytes() == journal


def test_sweep_status_missing_journal(tmp_path, capsys):
    assert main(["sweep-status", "--out-dir", str(tmp_path / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_sweep_store_max_entries_pins_corpus(
    three_model_files, tmp_path, capsys
):
    """Post-run eviction never drops this sweep's corpus entries —
    digest-shipped workers of a concurrent or resumed run over the
    same out-dir rehydrate models from exactly those entries."""
    from repro.core.artifact_store import ArtifactStore, model_digest
    from repro import read_sbml_file

    path_a, path_b, path_c = three_model_files
    out_dir = tmp_path / "sweepdir"
    # Plant a non-corpus entry: it is evictable, the corpus is not.
    store = ArtifactStore(out_dir / "artifacts")
    stray = "ab" + "0" * 62
    from repro.core.artifact_store import ModelArtifacts
    store.put(stray, ModelArtifacts(used_ids=set(), registry=None, initial={}))
    assert main([
        "sweep", str(path_a), str(path_b), str(path_c),
        "--shards", "2", "--out-dir", str(out_dir),
        "--store-max-entries", "0",
    ]) == 0
    err = capsys.readouterr().err
    assert "evicted 1 artifact store entry" in err
    assert stray not in store
    digests = {
        model_digest(read_sbml_file(path).model)
        for path in (path_a, path_b, path_c)
    }
    for digest in digests:
        assert digest in store
    assert len(store) == 3


def test_sweep_store_max_entries_needs_out_dir(three_model_files, capsys):
    path_a, path_b, path_c = three_model_files
    assert main([
        "sweep", str(path_a), str(path_b), str(path_c),
        "--store-max-entries", "1",
    ]) == 2
    assert "--out-dir" in capsys.readouterr().err


def test_sweep_prescreen_byte_identical(three_model_files, tmp_path, capsys):
    """--prescreen is a pure go-faster knob: the deterministic CSV is
    byte-identical to the full sweep (the eighth conformance path, on
    the CLI)."""
    path_a, path_b, path_c = three_model_files
    full = tmp_path / "full.csv"
    screened = tmp_path / "screened.csv"
    assert main(
        ["sweep", str(path_a), str(path_b), str(path_c),
         "--deterministic", "-o", str(full)]
    ) == 0
    assert main(
        ["sweep", str(path_a), str(path_b), str(path_c),
         "--deterministic", "--prescreen", "-o", str(screened)]
    ) == 0
    err = capsys.readouterr().err
    assert screened.read_bytes() == full.read_bytes()
    assert "prescreen-synthesized" in err


# ---------------------------------------------------------------------------
# corpus index / corpus query
# ---------------------------------------------------------------------------


@pytest.fixture
def corpus_files(tmp_path):
    from repro.corpus import generate_corpus

    paths = []
    for position, model in enumerate(generate_corpus(count=8, seed=19)):
        path = tmp_path / f"c{position:02d}.xml"
        write_sbml_file(model, path)
        paths.append(path)
    return paths


def test_corpus_index_build_and_update(corpus_files, tmp_path, capsys):
    index_file = tmp_path / "corpus.idx"
    assert main(
        ["corpus", "index", *map(str, corpus_files[:5]),
         "--index", str(index_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "5 model(s) (5 new, 0 refreshed)" in out
    # Incremental update: 3 new, 1 refreshed, nothing rebuilt.
    assert main(
        ["corpus", "index", *map(str, corpus_files[4:]),
         "--index", str(index_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "8 model(s) (3 new, 1 refreshed)" in out


def test_corpus_query_byte_identical_to_linear_scan(
    corpus_files, tmp_path, capsys
):
    """The CI smoke contract: ``--top-k 0 --with-pruned
    --deterministic`` against the index equals a full linear scan,
    byte for byte."""
    index_file = tmp_path / "corpus.idx"
    assert main(
        ["corpus", "index", *map(str, corpus_files),
         "--index", str(index_file)]
    ) == 0
    indexed_csv = tmp_path / "indexed.csv"
    linear_csv = tmp_path / "linear.csv"
    assert main(
        ["corpus", "query", str(corpus_files[2]),
         "--index", str(index_file), "--top-k", "0", "--with-pruned",
         "--deterministic", "-o", str(indexed_csv)]
    ) == 0
    err = capsys.readouterr().err
    assert "prescreen-synthesized" in err
    assert main(
        ["corpus", "query", str(corpus_files[2]),
         "--linear", *map(str, corpus_files),
         "--deterministic", "-o", str(linear_csv)]
    ) == 0
    capsys.readouterr()
    assert indexed_csv.read_bytes() == linear_csv.read_bytes()


def test_corpus_query_top_k_limits_full_matches(
    corpus_files, tmp_path, capsys
):
    index_file = tmp_path / "corpus.idx"
    assert main(
        ["corpus", "index", *map(str, corpus_files),
         "--index", str(index_file)]
    ) == 0
    capsys.readouterr()
    assert main(
        ["corpus", "query", str(corpus_files[4]),
         "--index", str(index_file), "--top-k", "1"]
    ) == 0
    captured = capsys.readouterr()
    assert "1 candidate(s) fully matched (top 1 of 4)" in captured.err
    # Pretty table: header + one matched row, pruned rows omitted.
    assert len(captured.out.strip().splitlines()) == 2


def test_corpus_query_needs_exactly_one_mode(corpus_files, capsys):
    assert main(["corpus", "query", str(corpus_files[0])]) == 2
    assert "--index or" in capsys.readouterr().err
    assert main(
        ["corpus", "query", str(corpus_files[0]),
         "--index", "x.idx", "--linear", str(corpus_files[1])]
    ) == 2


def test_corpus_index_semantics_mismatch_rejected(
    corpus_files, tmp_path, capsys
):
    index_file = tmp_path / "corpus.idx"
    assert main(
        ["corpus", "index", str(corpus_files[0]),
         "--index", str(index_file)]
    ) == 0
    capsys.readouterr()
    assert main(
        ["corpus", "index", str(corpus_files[1]),
         "--index", str(index_file), "--semantics", "none"]
    ) == 2
    assert "different key options" in capsys.readouterr().err
    assert main(
        ["corpus", "query", str(corpus_files[0]),
         "--index", str(index_file), "--semantics", "none"]
    ) == 2


def test_corpus_index_evict_and_store_pinning(
    corpus_files, tmp_path, capsys
):
    from repro.core.artifact_store import ArtifactStore
    from repro.core.corpus_index import CorpusIndex

    index_file = tmp_path / "corpus.idx"
    store_dir = tmp_path / "store"
    assert main(
        ["corpus", "index", *map(str, corpus_files),
         "--index", str(index_file), "--store", str(store_dir),
         "--evict-to", "6", "--store-max-entries", "0"]
    ) == 0
    captured = capsys.readouterr()
    assert "2 evicted" in captured.out
    assert "evicted 2 unpinned artifact store entries" in captured.err
    index = CorpusIndex.load(index_file)
    assert len(index) == 6
    # Exactly the index's 6 pinned entries survive in the store.
    store = ArtifactStore(store_dir)
    assert len(store) == 6
    for digest in index.digests():
        assert store.get(digest) is not None


def test_corpus_query_stale_file_warns(corpus_files, tmp_path, capsys):
    index_file = tmp_path / "corpus.idx"
    assert main(
        ["corpus", "index", *map(str, corpus_files[:4]),
         "--index", str(index_file)]
    ) == 0
    # Rewrite one indexed file with different content.
    from repro.corpus import generate_corpus

    replacement = generate_corpus(count=8, seed=19)[6]
    write_sbml_file(replacement, corpus_files[1])
    capsys.readouterr()
    # c07 has blocked candidates among the first four (c01 included),
    # so the rewritten file is loaded for a full match and its digest
    # no longer matches the index entry.
    assert main(
        ["corpus", "query", str(corpus_files[7]),
         "--index", str(index_file), "--top-k", "0"]
    ) == 0
    assert "stale digest" in capsys.readouterr().err
