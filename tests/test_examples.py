"""Smoke tests: every example script must run cleanly."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{path.name} produced no output"


def test_quickstart_shows_merge_outcome(capsys):
    runpy.run_path(
        str(Path(__file__).parent.parent / "examples" / "quickstart.py"),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "composed:" in out
    assert "duplicate" in out.lower()


def test_drug_interaction_reports_change(capsys):
    runpy.run_path(
        str(
            Path(__file__).parent.parent
            / "examples"
            / "drug_interaction.py"
        ),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "drug-glucose complex" in out


def test_validate_composition_runs_all_four_methods(capsys):
    runpy.run_path(
        str(
            Path(__file__).parent.parent
            / "examples"
            / "validate_composition.py"
        ),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    for marker in ("[4.1.1]", "[4.1.2]", "[4.1.3]", "[4.1.4]"):
        assert marker in out
