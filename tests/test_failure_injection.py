"""Failure injection across the stack.

Every layer must fail *cleanly* — a specific :class:`ReproError`
subclass with a useful message — on malformed or hostile input, never
with an unrelated traceback, an infinite loop or silent corruption.
"""

import pytest

from repro import ModelBuilder, read_sbml, compose_all
from repro.errors import (
    MathEvalError,
    MathParseError,
    PropertyError,
    ReproError,
    SBMLParseError,
    SimulationError,
)
from repro.eval import check_trace, parse_property
from repro.mathml import Apply, Identifier, Lambda, evaluate, parse_infix, parse_mathml
from repro.sim import Trace, simulate


class TestMalformedXML:
    def test_truncated_document(self):
        with pytest.raises(SBMLParseError):
            read_sbml("<sbml><model id='m'><listOfSpecies>")

    def test_binary_garbage(self):
        with pytest.raises(SBMLParseError):
            read_sbml("\x00\x01\x02 not xml at all")

    def test_wrong_root(self):
        with pytest.raises(SBMLParseError):
            read_sbml("<cellml><model/></cellml>")

    def test_math_inside_sbml_malformed(self):
        text = """<sbml xmlns="http://www.sbml.org/sbml/level2/version4">
          <model id="m"><listOfRules>
            <algebraicRule>
              <math xmlns="http://www.w3.org/1998/Math/MathML">
                <apply><plus/><unknownElement/></apply>
              </math>
            </algebraicRule>
          </listOfRules></model></sbml>"""
        with pytest.raises(SBMLParseError) as excinfo:
            read_sbml(text)
        assert "math" in str(excinfo.value).lower()

    def test_error_message_names_the_context(self):
        text = """<sbml xmlns="http://www.sbml.org/sbml/level2/version4">
          <model id="m">
            <listOfCompartments><compartment id="c"/></listOfCompartments>
            <listOfSpecies>
              <species id="s" compartment="c" initialConcentration="NaNope"/>
            </listOfSpecies>
          </model></sbml>"""
        with pytest.raises(SBMLParseError) as excinfo:
            read_sbml(text)
        assert "initialConcentration" in str(excinfo.value)


class TestHostileMath:
    def test_deeply_nested_formula_parses_or_fails_cleanly(self):
        formula = "(" * 80 + "x" + ")" * 80
        assert parse_infix(formula) == Identifier("x")

    def test_unbalanced_deep_nesting(self):
        with pytest.raises(MathParseError):
            parse_infix("(" * 50 + "x" + ")" * 49)

    def test_mutually_recursive_functions_dont_hang(self):
        f = Lambda(("x",), Apply("g", (Identifier("x"),)))
        g = Lambda(("x",), Apply("f", (Identifier("x"),)))
        with pytest.raises(MathEvalError):
            evaluate(
                Apply("f", (Identifier("y"),)),
                {"y": 1.0},
                functions={"f": f, "g": g},
            )

    def test_huge_exponent_overflow(self):
        with pytest.raises(ReproError):
            evaluate(parse_infix("10 ^ 10 ^ 10"))

    def test_empty_mathml_apply(self):
        with pytest.raises(MathParseError):
            parse_mathml(
                '<math xmlns="http://www.w3.org/1998/Math/MathML">'
                "<apply/></math>"
            )


class TestCompositionEdgeCases:
    def test_compose_model_with_itself_object_identity(self):
        # Passing the SAME object twice must not corrupt it.
        model = (
            ModelBuilder("m").compartment("c").species("A", 1.0)
            .parameter("k", 1.0).mass_action("r", ["A"], [], "k")
            .build()
        )
        before = model.component_count()
        merged = compose_all([model, model]).model
        assert model.component_count() == before
        assert merged.component_count() == before

    def test_colliding_ids_across_types(self):
        # Species in model 2 reuses a parameter id from model 1.
        first = (
            ModelBuilder("a").compartment("c").parameter("x", 1.0).build()
        )
        second = ModelBuilder("b").compartment("c").species("x", 1.0).build()
        merged, report = compose_all([first, second]).pair()
        from repro.sbml import validate_model

        assert validate_model(merged) == []
        assert "x" in report.renamed

    def test_rename_cascade_terminates(self):
        # model 1 already contains x and x_m2 and x_m2(2): renames must
        # keep probing until a free id is found.
        first = (
            ModelBuilder("a").compartment("c")
            .parameter("x", 1.0).parameter("x_m2", 2.0)
            .parameter("x_m22", 3.0)
            .build()
        )
        second = ModelBuilder("b").compartment("c").species("x", 1.0).build()
        merged, report = compose_all([first, second]).pair()
        assert len(merged.global_ids()) == 5  # c + 3 params + renamed x
        from repro.sbml import validate_model

        assert validate_model(merged) == []

    def test_unevaluable_initial_assignment_degrades_to_conflict(self):
        first = (
            ModelBuilder("a").compartment("c").species("A", 1.0)
            .initial_assignment("A", "unknown_symbol * 2")
            .build()
        )
        second = (
            ModelBuilder("b").compartment("c").species("A", 1.0)
            .initial_assignment("A", "3")
            .build()
        )
        merged, report = compose_all([first, second]).pair()
        # Cannot evaluate the first: falls back to conflict, keeps it.
        assert report.has_conflicts()
        assert len(merged.initial_assignments) == 1

    def test_empty_names_do_not_match_everything(self):
        first = ModelBuilder("a").compartment("c").build()
        second = ModelBuilder("b").compartment("c").build()
        first.compartments[0].name = ""
        second.compartments[0].name = ""
        merged = compose_all([first, second]).model
        assert len(merged.compartments) == 1  # matched by id "c"


class TestSimulationFailures:
    def test_diverging_model_detected(self):
        model = (
            ModelBuilder("boom").compartment("c")
            .species("X", 1.0)
            .parameter("k", 1.0)
            .reaction("r", [], ["X"], formula="k * X * X * 1e6")
            .build()
        )
        with pytest.raises(SimulationError):
            simulate(model, 10.0, 100)

    def test_trace_column_mismatch(self):
        with pytest.raises(SimulationError):
            Trace([0, 1, 2], {"A": [1, 2]})

    def test_property_on_missing_species(self):
        trace = Trace([0.0, 1.0], {"A": [1.0, 2.0]})
        with pytest.raises(PropertyError):
            check_trace("B > 0", trace)

    def test_property_parser_rejects_nonsense(self):
        for bad in ("", "G", "((A > 1)", "A >", "F[1,0] A > 0"):
            with pytest.raises((PropertyError, ReproError)):
                parse_property(bad)


class TestUnicodeAndNaming:
    def test_unicode_species_names_survive(self):
        model = (
            ModelBuilder("m").compartment("c")
            .species("akg", 1.0, name="α-ketoglutarate")
            .build()
        )
        from repro import write_sbml

        restored = read_sbml(write_sbml(model)).model
        assert restored.get_species("akg").name == "α-ketoglutarate"

    def test_unicode_names_match_spelled_synonyms(self):
        first = (
            ModelBuilder("a").compartment("c")
            .species("akg1", 1.0, name="α-ketoglutarate").build()
        )
        second = (
            ModelBuilder("b").compartment("c")
            .species("akg2", 1.0, name="alpha-ketoglutarate").build()
        )
        merged = compose_all([first, second]).model
        assert len(merged.species) == 1


class TestChaosFaultInjection:
    """The chaos harness drives the same clean-failure contract: an
    injected fault must surface as the specific error (or counter)
    the real fault would — never as an unrelated traceback."""

    def _model(self):
        return (
            ModelBuilder("m").compartment("c")
            .species("A", 1.0).species("B", 0.0)
            .parameter("k", 0.5)
            .mass_action("r", ["A"], ["B"], "k")
            .build()
        )

    def test_corrupt_artifact_read_quarantines_and_recomputes(
        self, tmp_path
    ):
        from repro.core import chaos
        from repro.core.artifact_store import (
            ArtifactStore,
            compute_artifacts,
            model_digest,
        )

        store = ArtifactStore(tmp_path / "store")
        model = self._model()
        digest = model_digest(model)
        path = store.put(digest, compute_artifacts(model))
        spec = chaos.ChaosSpec(
            tmp_path,
            faults=[
                chaos.Fault(site="artifact-read", action="corrupt", times=1)
            ],
        )
        with chaos.active(spec, publish=False):
            assert store.get(digest) is None  # bit rot = miss, no raise
        assert store.stats()["corrupt"] == 1
        assert not path.exists()  # garbled blob quarantined
        assert (
            tmp_path / "store" / ArtifactStore.CORRUPT_DIR / path.name
        ).is_file()
        # Self-heal: the next compute rewrites a good entry.
        assert store.get_or_compute(model) is not None
        assert store.get(digest) is not None

    def test_unreadable_journal_and_backup_fail_cleanly(self, tmp_path):
        from repro.core.shards import SweepCheckpoint, SweepStateError

        (tmp_path / SweepCheckpoint.FILENAME).write_bytes(b"\x00\xff torn")
        (tmp_path / SweepCheckpoint.BACKUP_FILENAME).write_bytes(b"{nope")
        with pytest.raises(SweepStateError) as excinfo:
            SweepCheckpoint.read_journal(tmp_path)
        message = str(excinfo.value)
        assert "unreadable" in message and "backup" in message

    def test_chaos_error_is_catchable_chaos_kill_is_not(self):
        from repro.core import chaos

        assert issubclass(chaos.ChaosError, ReproError)
        assert issubclass(chaos.ChaosKill, BaseException)
        assert not issubclass(chaos.ChaosKill, Exception)
