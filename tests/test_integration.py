"""Cross-module integration tests.

Exercise the whole stack together: corpus → compose → validate →
serialise → re-read → simulate → evaluate, the way a downstream user
would chain the public API.
"""

import numpy as np
import pytest

from repro import ModelBuilder, read_sbml, write_sbml, compose_all
from repro.analysis import conservation_laws, is_conserved, merge_impact
from repro.baselines import SemanticSBMLMerge, generate_database
from repro.corpus import (
    corpus_by_size,
    generate_corpus,
    glycolysis_lower,
    glycolysis_upper,
    semantic_suite,
)
from repro.eval import (
    models_equivalent,
    residual_sum_of_squares,
    traces_equivalent,
)
from repro.graph import ZoomIndex, connected_components
from repro.sbml import validate_model
from repro.sim import simulate
from repro.units.model_convert import to_stochastic


@pytest.fixture(scope="module")
def small_corpus():
    return corpus_by_size(generate_corpus(count=40, seed=7))


class TestCorpusPipeline:
    def test_corpus_pairs_compose_to_valid_models(self, small_corpus):
        for first, second in zip(small_corpus[::5], small_corpus[1::5]):
            merged = compose_all([first, second]).model
            errors = [
                issue
                for issue in validate_model(merged)
                if issue.severity == "error"
            ]
            assert errors == [], f"{first.id}+{second.id}: {errors[:3]}"

    def test_composed_corpus_models_round_trip_xml(self, small_corpus):
        first, second = small_corpus[10], small_corpus[12]
        merged = compose_all([first, second]).model
        restored = read_sbml(write_sbml(merged)).model
        restored.id = merged.id
        assert models_equivalent(merged, restored)

    def test_serialised_then_composed_equals_composed(self, small_corpus):
        # compose_all over round-tripped inputs == compose_all over
        # the originals
        first, second = small_corpus[8], small_corpus[14]
        direct = compose_all([first, second]).model
        via_xml = compose_all([
            read_sbml(write_sbml(first)).model,
            read_sbml(write_sbml(second)).model,
        ]).model
        assert models_equivalent(direct, via_xml)

    def test_merge_is_size_monotone_over_corpus(self, small_corpus):
        for first, second in zip(small_corpus[::7], small_corpus[2::7]):
            merged = compose_all([first, second]).model
            assert merged.network_size() <= (
                first.network_size() + second.network_size()
            )
            assert merged.num_nodes() >= max(
                first.num_nodes(), second.num_nodes()
            )


class TestGlycolysisEndToEnd:
    def test_full_pathway_pipeline(self):
        upper, lower = glycolysis_upper(), glycolysis_lower()
        merged, report = compose_all([upper, lower]).pair()

        # 1. Valid.
        assert validate_model(merged) == []
        # 2. Topologically sensible.
        impact = merge_impact(upper, lower, merged)
        assert impact.nodes_shared == 3  # g3p, atp, adp
        # 3. Conservation: adenine pool (ATP + ADP) survives the merge.
        assert is_conserved(merged, {"atp": 1.0, "adp": 1.0})
        # 4. Simulates: glucose falls, pyruvate rises.
        trace = simulate(merged, 10.0, 1000)
        assert trace.final()["glc"] < 5.0
        assert trace.final()["pyr"] > 0.0
        # 5. Deterministic: the same merge again is identical.
        again = compose_all([glycolysis_upper(), glycolysis_lower()]).model
        assert models_equivalent(merged, again)
        trace_again = simulate(again, 10.0, 1000)
        assert traces_equivalent(trace, trace_again)

    def test_zoom_over_composed_pathway(self):
        merged = compose_all([glycolysis_upper(), glycolysis_lower()]).model
        index = ZoomIndex(merged)
        root = list(index.graph_at(index.depth - 1).nodes)[0]
        assert index.leaves(index.depth - 1, root) == {
            s.id for s in merged.species
        }

    def test_decompose_compose_simulate(self):
        merged = compose_all([glycolysis_upper(), glycolysis_lower()]).model
        parts = connected_components(merged)
        assert len(parts) == 1  # glycolysis is one connected network


class TestEnginesAgree:
    def test_baseline_and_core_agree_on_suite(self, tmp_path):
        path = tmp_path / "db.tsv"
        generate_database(path, entry_count=3000)
        baseline = SemanticSBMLMerge(database_path=path)
        suite = semantic_suite()
        for first, second in zip(suite[::4], suite[1::4]):
            ours = compose_all([first, second]).model
            theirs, _ = baseline.merge(first, second)
            assert len(ours.species) == len(theirs.species), (
                f"{first.id}+{second.id}"
            )


class TestConvertComposeSimulate:
    def test_stochastic_conversion_preserves_mean_dynamics(self):
        # Deterministic decay vs the SSA mean of its converted twin.
        volume = 1e-21  # tiny volume => countable molecules
        deterministic = (
            ModelBuilder("d")
            .compartment("cell", size=volume)
            .species("A", 1000 / (6.022e23 * volume))  # 1000 molecules
            .species("B", 0.0)
            .parameter("k", 0.5)
            .mass_action("r", ["A"], ["B"], "k")
            .build()
        )
        stochastic, report = to_stochastic(deterministic)
        assert stochastic.get_species("A").initial_amount == (
            pytest.approx(1000, rel=1e-6)
        )
        from repro.sim import simulate_stochastic

        traces = simulate_stochastic(stochastic, t_end=2.0, runs=30, seed=5)
        mean_final = np.mean([t.final()["A"] for t in traces])
        expected = 1000 * np.exp(-0.5 * 2.0)
        assert mean_final == pytest.approx(expected, rel=0.1)
