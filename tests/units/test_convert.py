"""Unit tests for Figure 6 mole/molecule conversions."""

import pytest

from repro.errors import UnitError
from repro.units import (
    AVOGADRO,
    concentration_to_molecules,
    deterministic_to_stochastic,
    molecules_to_concentration,
    reaction_order_of_stoichiometry,
    stochastic_to_deterministic,
)


def test_avogadro_value():
    # Paper: nA = 6.022x10^23
    assert AVOGADRO == pytest.approx(6.022e23)


def test_zeroth_order_formula():
    # Fig 6: c = nA * k * V
    k, volume = 2.0, 1e-15
    assert deterministic_to_stochastic(k, 0, volume) == pytest.approx(
        AVOGADRO * k * volume
    )


def test_first_order_is_identity():
    # Fig 6: c = k
    assert deterministic_to_stochastic(0.7, 1, 1e-15) == 0.7


def test_second_order_formula():
    # Fig 6: c = k / (nA * V)
    k, volume = 1e6, 1e-15
    assert deterministic_to_stochastic(k, 2, volume) == pytest.approx(
        k / (AVOGADRO * volume)
    )


@pytest.mark.parametrize("order", [0, 1, 2])
@pytest.mark.parametrize("k", [1e-3, 1.0, 1e6])
def test_round_trip(order, k):
    volume = 1e-12
    c = deterministic_to_stochastic(k, order, volume)
    assert stochastic_to_deterministic(c, order, volume) == pytest.approx(k)


def test_concentration_to_molecules():
    # Fig 6: x = nA * [X] * V
    assert concentration_to_molecules(1e-6, 1e-15) == pytest.approx(
        AVOGADRO * 1e-6 * 1e-15
    )


def test_molecules_round_trip():
    molecules = 6022.0
    volume = 1e-15
    concentration = molecules_to_concentration(molecules, volume)
    assert concentration_to_molecules(
        concentration, volume
    ) == pytest.approx(molecules)


def test_unsupported_order_rejected():
    with pytest.raises(UnitError):
        deterministic_to_stochastic(1.0, 3, 1.0)
    with pytest.raises(UnitError):
        stochastic_to_deterministic(1.0, -1, 1.0)


def test_nonpositive_volume_rejected():
    with pytest.raises(UnitError):
        deterministic_to_stochastic(1.0, 1, 0.0)
    with pytest.raises(UnitError):
        concentration_to_molecules(1.0, -2.0)


def test_order_of_stoichiometry():
    assert reaction_order_of_stoichiometry([]) == 0
    assert reaction_order_of_stoichiometry([1.0]) == 1
    assert reaction_order_of_stoichiometry([1.0, 1.0]) == 2
    assert reaction_order_of_stoichiometry([2.0]) == 2


def test_order_rejects_fractional():
    with pytest.raises(UnitError):
        reaction_order_of_stoichiometry([0.5])


def test_order_rejects_negative():
    with pytest.raises(UnitError):
        reaction_order_of_stoichiometry([-1.0])


def test_custom_avogadro_threading():
    # Allow exact textbook reproductions with rounded constants.
    assert deterministic_to_stochastic(1.0, 0, 2.0, avogadro=6e23) == (
        pytest.approx(1.2e24)
    )
