"""Unit tests for unit definitions and canonical forms."""

import pytest

from repro.errors import IncompatibleUnitsError
from repro.units import CanonicalUnit, Unit, UnitDefinition


def make(id, *units):
    return UnitDefinition(id, None, list(units))


def test_unit_canonical_simple():
    canonical = Unit("second").canonical()
    assert canonical.factor == 1.0


def test_unit_scale():
    # millisecond = 10^-3 second
    canonical = Unit("second", scale=-3).canonical()
    assert canonical.factor == pytest.approx(1e-3)


def test_unit_multiplier():
    # minute = 60 seconds
    canonical = Unit("second", multiplier=60.0).canonical()
    assert canonical.factor == pytest.approx(60.0)


def test_unit_negative_exponent():
    canonical = Unit("second", exponent=-1).canonical()
    assert canonical.factor == 1.0
    assert sum(canonical.dims) == -1


def test_scale_applies_inside_exponent():
    # (mm)^2 = (10^-3 m)^2 = 10^-6 m^2
    canonical = Unit("metre", exponent=2, scale=-3).canonical()
    assert canonical.factor == pytest.approx(1e-6)


def test_definition_product():
    # micromole per litre
    definition = make(
        "uM", Unit("mole", scale=-6), Unit("litre", exponent=-1)
    )
    canonical = definition.canonical()
    assert canonical.factor == pytest.approx(1e-6 / 1e-3)


def test_per_second_definition():
    definition = make("per_second", Unit("second", exponent=-1))
    assert definition.canonical().factor == 1.0


def test_same_unit_across_spelling():
    molar_a = make("M1", Unit("mole"), Unit("litre", exponent=-1))
    molar_b = make("M2", Unit("mole"), Unit("liter", exponent=-1))
    assert molar_a.same_unit(molar_b)


def test_same_unit_across_scale_vs_multiplier():
    # 10^-3 mole == 0.001 * mole
    a = make("mmol_scale", Unit("mole", scale=-3))
    b = make("mmol_mult", Unit("mole", multiplier=1e-3))
    assert a.same_unit(b)


def test_same_dimensions_but_not_same_unit():
    mol = make("mol", Unit("mole"))
    mmol = make("mmol", Unit("mole", scale=-3))
    assert mol.same_dimensions(mmol)
    assert not mol.same_unit(mmol)


def test_conversion_factor_mmol_to_mol():
    mol = make("mol", Unit("mole"))
    mmol = make("mmol", Unit("mole", scale=-3))
    # value[mmol] * 1e-3 == value[mol]
    assert mmol.conversion_factor(mol) == pytest.approx(1e-3)


def test_conversion_factor_litre_to_cubic_metre():
    litre = make("l", Unit("litre"))
    cubic_metre = make("m3", Unit("metre", exponent=3))
    assert litre.conversion_factor(cubic_metre) == pytest.approx(1e-3)


def test_incompatible_conversion_raises():
    mole = make("mol", Unit("mole"))
    second = make("s", Unit("second"))
    with pytest.raises(IncompatibleUnitsError):
        mole.conversion_factor(second)


def test_mole_vs_item_incompatible():
    # The paper's Fig 6 case: no plain factor converts moles to
    # molecules; it requires Avogadro + context.
    moles = make("mol", Unit("mole"))
    molecules = make("molecules", Unit("item"))
    with pytest.raises(IncompatibleUnitsError):
        moles.conversion_factor(molecules)


def test_canonical_algebra():
    metre = Unit("metre").canonical()
    second = Unit("second").canonical()
    speed = metre / second
    assert speed.dims[0] == 1
    area = metre * metre
    assert area.dims[0] == 2
    assert (metre**3).dims[0] == 3


def test_dimensionless_detection():
    assert CanonicalUnit.dimensionless().is_dimensionless
    ratio = Unit("mole").canonical() / Unit("mole").canonical()
    assert ratio.is_dimensionless


def test_describe_readable():
    text = make("uM", Unit("mole", scale=-6), Unit("litre", -1)).canonical()
    description = text.describe()
    assert "metre" in description
    assert "mole" in description


def test_approx_equal_tolerates_rounding():
    a = CanonicalUnit(0.1 + 0.2, (0,) * 8)
    b = CanonicalUnit(0.3, (0,) * 8)
    assert a.approx_equal(b)


def test_copy_is_independent():
    original = make("x", Unit("mole"))
    duplicate = original.copy()
    duplicate.units.append(Unit("second"))
    assert len(original.units) == 1
