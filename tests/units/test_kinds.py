"""Unit tests for SBML base unit kinds."""

import pytest

from repro.errors import UnknownUnitError
from repro.units import (
    BASE_KINDS,
    DIMENSION_NAMES,
    is_known_kind,
    kind_decomposition,
    normalize_kind,
)


def test_all_sbml_kinds_present():
    expected = {
        "ampere", "becquerel", "candela", "coulomb", "dimensionless",
        "farad", "gram", "gray", "henry", "hertz", "item", "joule",
        "katal", "kelvin", "kilogram", "litre", "lumen", "lux", "metre",
        "mole", "newton", "ohm", "pascal", "radian", "second",
        "siemens", "sievert", "steradian", "tesla", "volt", "watt",
        "weber",
    }
    assert expected <= set(BASE_KINDS)


def test_dimension_vector_length():
    for kind, (factor, dims) in BASE_KINDS.items():
        assert len(dims) == len(DIMENSION_NAMES), kind
        assert factor > 0, kind


def test_litre_is_milli_cubic_metre():
    factor, dims = kind_decomposition("litre")
    assert factor == pytest.approx(1e-3)
    assert dims[DIMENSION_NAMES.index("metre")] == 3


def test_gram_factor():
    factor, dims = kind_decomposition("gram")
    assert factor == pytest.approx(1e-3)
    assert dims[DIMENSION_NAMES.index("kilogram")] == 1


def test_us_spellings_accepted():
    assert normalize_kind("liter") == "litre"
    assert normalize_kind("meter") == "metre"
    assert is_known_kind("liter")
    assert kind_decomposition("liter") == kind_decomposition("litre")


def test_item_is_distinct_from_mole():
    # Central to the paper's Fig 6 problem: molecules and moles are
    # NOT plainly interconvertible.
    _, item_dims = kind_decomposition("item")
    _, mole_dims = kind_decomposition("mole")
    assert item_dims != mole_dims


def test_dimensionless_kinds():
    for kind in ("dimensionless", "radian", "steradian"):
        _, dims = kind_decomposition(kind)
        assert all(d == 0 for d in dims), kind


def test_derived_kind_joule():
    _, dims = kind_decomposition("joule")
    by_name = dict(zip(DIMENSION_NAMES, dims))
    assert by_name["kilogram"] == 1
    assert by_name["metre"] == 2
    assert by_name["second"] == -2


def test_katal_is_mole_per_second():
    _, dims = kind_decomposition("katal")
    by_name = dict(zip(DIMENSION_NAMES, dims))
    assert by_name["mole"] == 1
    assert by_name["second"] == -1


def test_unknown_kind_raises():
    with pytest.raises(UnknownUnitError):
        kind_decomposition("furlong")
    assert not is_known_kind("furlong")
