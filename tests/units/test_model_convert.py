"""Unit tests for whole-model Figure 6 conversion."""

import pytest

from repro import ModelBuilder, compose_all
from repro.errors import UnitError
from repro.units import AVOGADRO
from repro.units.model_convert import to_deterministic, to_stochastic


def deterministic_model(volume=1e-15):
    return (
        ModelBuilder("det")
        .compartment("cell", size=volume)
        .species("A", 1e-6)
        .species("B", 0.0)
        .parameter("k1", 0.5)
        .mass_action("r1", ["A"], ["B"], "k1")
        .build()
    )


def bimolecular_model(volume=1e-15):
    return (
        ModelBuilder("bi")
        .compartment("cell", size=volume)
        .species("A", 1e-6)
        .species("B", 1e-6)
        .species("AB", 0.0)
        .parameter("k2", 1e6)
        .mass_action("bind", ["A", "B"], ["AB"], "k2")
        .build()
    )


class TestToStochastic:
    def test_species_become_counts(self):
        volume = 1e-15
        stochastic, report = to_stochastic(deterministic_model(volume))
        species = stochastic.get_species("A")
        assert species.initial_amount == pytest.approx(
            AVOGADRO * 1e-6 * volume
        )
        assert species.initial_concentration is None
        assert species.has_only_substance_units
        assert "A" in report.species_converted

    def test_first_order_constant_unchanged(self):
        stochastic, report = to_stochastic(deterministic_model())
        assert stochastic.get_parameter("k1").value == 0.5

    def test_second_order_constant_scaled(self):
        volume = 1e-15
        stochastic, report = to_stochastic(bimolecular_model(volume))
        expected = 1e6 / (AVOGADRO * volume)
        assert stochastic.get_parameter("k2").value == pytest.approx(expected)
        assert any(name == "k2" for name, _, _ in report.constants_converted)

    def test_zeroth_order_constant_scaled(self):
        volume = 1e-15
        model = (
            ModelBuilder("syn")
            .compartment("cell", size=volume)
            .species("X", 0.0)
            .parameter("k0", 2.0)
            .reaction("make", [], ["X"], formula="k0")
            .build()
        )
        stochastic, _ = to_stochastic(model)
        assert stochastic.get_parameter("k0").value == pytest.approx(
            AVOGADRO * 2.0 * volume
        )

    def test_local_parameters_converted(self):
        volume = 1e-15
        model = (
            ModelBuilder("loc")
            .compartment("cell", size=volume)
            .species("A", 1e-6)
            .species("B", 1e-6)
            .species("AB", 0.0)
            .reaction(
                "bind",
                ["A", "B"],
                ["AB"],
                formula="k * A * B",
                local_parameters={"k": 1e6},
            )
            .build()
        )
        stochastic, _ = to_stochastic(model)
        law = stochastic.get_reaction("bind").kinetic_law
        assert law.parameters[0].value == pytest.approx(
            1e6 / (AVOGADRO * volume)
        )

    def test_non_mass_action_skipped_with_warning(self):
        model = (
            ModelBuilder("mm")
            .compartment("cell", size=1e-15)
            .species("S", 1e-6)
            .species("P", 0.0)
            .parameter("Vmax", 1.0)
            .parameter("Km", 1e-6)
            .michaelis_menten("r", "S", "P", "Vmax", "Km")
            .build()
        )
        stochastic, report = to_stochastic(model)
        assert "r" in report.skipped_reactions
        assert report.warnings
        # The MM constants are untouched.
        assert stochastic.get_parameter("Vmax").value == 1.0

    def test_shared_constant_across_orders_rejected(self):
        model = (
            ModelBuilder("bad")
            .compartment("cell", size=1e-15)
            .species("A", 1e-6)
            .species("B", 1e-6)
            .species("C", 0.0)
            .parameter("k", 1.0)
            .mass_action("uni", ["A"], ["C"], "k")
            .mass_action("bi", ["A", "B"], ["C"], "k")
            .build()
        )
        with pytest.raises(UnitError):
            to_stochastic(model)

    def test_inputs_not_mutated(self):
        model = deterministic_model()
        before = model.get_species("A").initial_concentration
        to_stochastic(model)
        assert model.get_species("A").initial_concentration == before


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [deterministic_model, bimolecular_model])
    def test_round_trip_recovers_values(self, factory):
        original = factory()
        stochastic, _ = to_stochastic(original)
        recovered, _ = to_deterministic(stochastic)
        for species in original.species:
            assert recovered.get_species(
                species.id
            ).initial_concentration == pytest.approx(
                species.initial_concentration, rel=1e-9
            )
        for parameter in original.parameters:
            assert recovered.get_parameter(
                parameter.id
            ).value == pytest.approx(parameter.value, rel=1e-9)


class TestConvertThenCompose:
    def test_converted_model_merges_with_original_via_figure6(self):
        """The headline workflow: a deterministic model and its
        stochastic counterpart describe the same physics; composition
        recognises the reactions through the Fig 6 reconciliation."""
        deterministic = bimolecular_model()
        stochastic, _ = to_stochastic(deterministic)
        stochastic.id = "stoch"
        # Rename the constant so plain pattern equality cannot match;
        # only the numeric Fig 6 reconciliation can.
        parameter = stochastic.get_parameter("k2")
        parameter.id = "c2"
        law = stochastic.get_reaction("bind").kinetic_law
        law.math = law.math.rename({"k2": "c2"})
        stochastic.get_reaction("bind").id = "bind_stoch"

        merged, report = compose_all([deterministic, stochastic]).pair()
        assert len(merged.reactions) == 1
        assert not any(
            c.attribute == "kineticLaw" for c in report.conflicts
        )
        assert any("conversion" in w.message for w in report.warnings)
