"""Unit tests for the unit registry."""

import pytest

from repro.errors import IncompatibleUnitsError, UnknownUnitError
from repro.units import Unit, UnitDefinition, UnitRegistry, builtin_definitions


def test_builtins_present():
    registry = UnitRegistry()
    for ref in ("substance", "volume", "area", "length", "time"):
        assert ref in registry


def test_builtin_substance_is_mole():
    registry = UnitRegistry()
    assert registry.same_unit("substance", "mole")


def test_builtin_volume_is_litre():
    registry = UnitRegistry()
    assert registry.same_unit("volume", "litre")


def test_bare_kind_resolvable():
    registry = UnitRegistry()
    assert "second" in registry
    assert registry.resolve("second").factor == 1.0


def test_unknown_reference_raises():
    registry = UnitRegistry()
    with pytest.raises(UnknownUnitError):
        registry.resolve("nope")
    assert "nope" not in registry


def test_model_definition_registered():
    per_second = UnitDefinition("per_second", None, [Unit("second", -1)])
    registry = UnitRegistry([per_second])
    assert "per_second" in registry
    assert registry.same_unit("per_second", "hertz")


def test_model_definition_shadows_builtin():
    # A model may redefine `substance` as millimoles.
    mmol = UnitDefinition("substance", None, [Unit("mole", scale=-3)])
    registry = UnitRegistry([mmol])
    assert not registry.same_unit("substance", "mole")
    assert registry.conversion_factor("substance", "mole") == (
        pytest.approx(1e-3)
    )


def test_conversion_factor_between_refs():
    registry = UnitRegistry(
        [
            UnitDefinition("ml", None, [Unit("litre", scale=-3)]),
        ]
    )
    assert registry.conversion_factor("ml", "litre") == pytest.approx(1e-3)


def test_incompatible_refs_raise():
    registry = UnitRegistry()
    with pytest.raises(IncompatibleUnitsError):
        registry.conversion_factor("mole", "second")


def test_definitions_copy_isolated():
    registry = UnitRegistry()
    table = registry.definitions()
    table.clear()
    assert "substance" in registry


def test_builtin_definitions_fresh_each_call():
    first = builtin_definitions()
    second = builtin_definitions()
    first["substance"].units.append(Unit("second"))
    assert len(second["substance"].units) == 1
